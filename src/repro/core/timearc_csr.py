"""Label-grouped CSR layout of a temporal network's time arcs.

The journey kernels all share one access pattern: visit the time arcs one
*label value* at a time, in ascending label order, and inside each label group
reduce the arcs that share a head vertex.  The :class:`TimeArcCSR` structure
precomputes exactly that view once per :class:`~repro.core.temporal_graph.TemporalGraph`:

* arcs are sorted by ``(label, head)`` and stored as flat ``tails``/``heads``
  column arrays (the CSR "columns");
* ``arc_offsets`` is the CSR row-offset array over *label groups*: the arcs
  carrying the ``g``-th smallest label occupy
  ``tails[arc_offsets[g]:arc_offsets[g + 1]]``;
* for every group the distinct head vertices and the start of each head's run
  (``head_values``/``head_starts``, indexed through ``head_offsets``) are
  precomputed, so a kernel can OR-reduce per-head reachability with a single
  ``np.logical_or.reduceat`` and no per-call ``np.unique``.

Because a journey's labels must strictly increase, a sweep that processes the
groups in order maintains the invariant "after group ``g``, every arrival time
``<= labels[g]`` is final" — see ``docs/performance.md`` for the full argument.
The structure is immutable (all arrays are read-only) and is built lazily and
cached by :attr:`TemporalGraph.timearc_csr`, so the ``O(A log A)`` sort cost is
paid once per network instead of once per kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .temporal_graph import TemporalGraph

__all__ = ["TimeArcCSR", "build_timearc_csr", "build_timearc_csr_from_arrays"]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True, slots=True)
class TimeArcCSR:
    """Immutable label-grouped CSR view of a temporal network's time arcs.

    Attributes
    ----------
    n:
        Number of vertices of the network the layout was built from.
    lifetime:
        The network's lifetime ``a``.
    labels:
        The distinct label values present, ascending — one CSR "row" (label
        group) per entry; shape ``(G,)``.
    arc_offsets:
        Row-offset array of shape ``(G + 1,)``; group ``g`` spans arc
        positions ``arc_offsets[g]`` to ``arc_offsets[g + 1]``.
    tails, heads:
        Tail/head vertex of every arc, sorted by ``(label, head)``; shape
        ``(A,)``.
    arc_order:
        Permutation mapping CSR arc position back to the index in the
        network's original time-arc arrays (``time_arc_tails`` etc.), for
        journey reconstruction; shape ``(A,)``.
    edge_index:
        Canonical edge index of every arc, in CSR order; shape ``(A,)``.
    head_values:
        Distinct head vertices of every group, concatenated; the heads of
        group ``g`` are ``head_values[head_offsets[g]:head_offsets[g + 1]]``.
    head_offsets:
        Offsets into ``head_values``/``head_starts`` per group; shape
        ``(G + 1,)``.
    head_starts:
        For each entry of ``head_values``, the start of that head's run of
        arcs *relative to its group's first arc* — the ``reduceat`` index
        array for the group, shape matching ``head_values``.
    """

    n: int
    lifetime: int
    labels: np.ndarray
    arc_offsets: np.ndarray
    tails: np.ndarray
    heads: np.ndarray
    arc_order: np.ndarray
    edge_index: np.ndarray
    head_values: np.ndarray
    head_offsets: np.ndarray
    head_starts: np.ndarray

    @property
    def num_arcs(self) -> int:
        """Total number of time arcs stored."""
        return int(self.tails.size)

    @property
    def num_groups(self) -> int:
        """Number of label groups (distinct label values)."""
        return int(self.labels.size)

    @property
    def nbytes(self) -> int:
        """Total bytes of the column arrays (diagnostics / capacity planning)."""
        return int(
            sum(
                arr.nbytes
                for arr in (
                    self.labels,
                    self.arc_offsets,
                    self.tails,
                    self.heads,
                    self.arc_order,
                    self.edge_index,
                    self.head_values,
                    self.head_offsets,
                    self.head_starts,
                )
            )
        )

    def group_slice(self, group: int) -> slice:
        """The ``slice`` into the arc arrays covered by label group ``group``."""
        return slice(int(self.arc_offsets[group]), int(self.arc_offsets[group + 1]))

    def iter_groups(self) -> Iterator[tuple[int, slice]]:
        """Iterate ``(label, arc_slice)`` pairs in ascending label order."""
        for group in range(self.num_groups):
            yield int(self.labels[group]), self.group_slice(group)

    def __repr__(self) -> str:
        return (
            f"TimeArcCSR(n={self.n}, arcs={self.num_arcs}, "
            f"groups={self.num_groups}, lifetime={self.lifetime})"
        )


def build_timearc_csr(network: "TemporalGraph") -> TimeArcCSR:
    """Build the label-grouped CSR layout for a temporal network.

    The arcs are sorted by ``(label, head)`` so that inside each label group
    arcs sharing a head are contiguous; the per-group distinct heads and their
    run starts are precomputed for the ``reduceat`` reduction used by the
    batched kernels.  Cost is ``O(A log A)`` time and ``O(A)`` memory for
    ``A = network.num_time_arcs``; call sites should go through the cached
    :attr:`TemporalGraph.timearc_csr` rather than rebuilding.

    Parameters
    ----------
    network:
        The temporal network whose time arcs to lay out.

    Returns
    -------
    TimeArcCSR
        The immutable CSR structure (all arrays read-only).
    """
    return build_timearc_csr_from_arrays(
        network.n,
        network.lifetime,
        network.time_arc_tails,
        network.time_arc_heads,
        network.time_arc_labels,
        network.time_arc_edge_index,
    )


def build_timearc_csr_from_arrays(
    n: int,
    lifetime: int,
    raw_tails: np.ndarray,
    raw_heads: np.ndarray,
    raw_labels: np.ndarray,
    raw_edge_index: np.ndarray,
) -> TimeArcCSR:
    """Build the label-grouped CSR layout from flat time-arc arrays.

    Array-level entry point shared by :func:`build_timearc_csr` and callers
    that already hold vectorised time-arc columns (e.g. the direct-to-CSR
    label-sampling fast path) and do not need a full
    :class:`~repro.core.temporal_graph.TemporalGraph` first.  The four input
    columns must be parallel ``int64`` arrays of equal length.
    """
    num_arcs = int(raw_labels.size)
    if num_arcs == 0:
        empty = _readonly(np.empty(0, dtype=np.int64))
        return TimeArcCSR(
            n=n,
            lifetime=lifetime,
            labels=empty,
            arc_offsets=_readonly(np.zeros(1, dtype=np.int64)),
            tails=empty,
            heads=empty,
            arc_order=empty,
            edge_index=empty,
            head_values=empty,
            head_offsets=_readonly(np.zeros(1, dtype=np.int64)),
            head_starts=empty,
        )

    order = np.lexsort((raw_heads, raw_labels))
    labels = raw_labels[order]
    tails = raw_tails[order]
    heads = raw_heads[order]
    edge_index = raw_edge_index[order]

    unique_labels, group_starts = np.unique(labels, return_index=True)
    arc_offsets = np.append(group_starts, num_arcs).astype(np.int64)

    # A head run starts wherever the head changes or a new label group begins.
    run_start = np.empty(num_arcs, dtype=bool)
    run_start[0] = True
    run_start[1:] = (heads[1:] != heads[:-1]) | (labels[1:] != labels[:-1])
    head_starts_abs = np.flatnonzero(run_start).astype(np.int64)
    head_values = heads[head_starts_abs]
    # Every group start is itself a run start, so searchsorted lands exactly.
    head_offsets = np.searchsorted(head_starts_abs, arc_offsets).astype(np.int64)
    heads_per_group = np.diff(head_offsets)
    head_starts = head_starts_abs - np.repeat(arc_offsets[:-1], heads_per_group)

    return TimeArcCSR(
        n=n,
        lifetime=lifetime,
        labels=_readonly(unique_labels.astype(np.int64)),
        arc_offsets=_readonly(arc_offsets),
        tails=_readonly(tails),
        heads=_readonly(heads),
        arc_order=_readonly(order.astype(np.int64)),
        edge_index=_readonly(edge_index),
        head_values=_readonly(head_values),
        head_offsets=_readonly(head_offsets),
        head_starts=_readonly(head_starts),
    )
