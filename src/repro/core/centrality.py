"""Temporal centrality: per-vertex closeness, harmonic closeness and reach.

The paper's journey framework supports a whole family of per-vertex
importance measures beyond the global diameter/radius statistics; this module
opens that family on top of the existing arrival machinery:

* **temporal closeness** — ``C(u) = |R(u)| / Σ_{t ∈ R(u)} δ(u, t)`` where
  ``R(u)`` is the set of vertices ``t ≠ u`` reachable from ``u``: the
  reciprocal of the mean temporal distance to the targets ``u`` can actually
  reach (0 when it reaches none).  Unlike classic closeness this stays
  meaningful on partially connected instances — exactly the regime the
  paper's Theorem 6 lower bounds put random sparse labelings in.
* **temporal harmonic closeness** — ``H(u) = (1/(n−1)) Σ_{t ≠ u} 1/δ(u, t)``
  with unreachable targets contributing 0; bounded in ``[0, 1]`` and robust
  to disconnection by construction.
* **influence counts** — ``|R(u)|``: how many vertices ``u``'s messages can
  ever reach (the size of its out-journey cone).
* **reach counts** — the in-mirror: how many vertices can reach ``u``.  For
  a *single* vertex this is exactly one reverse sweep
  (:func:`repro.core.reverse_journeys.reverse_reachable_set`); the batched
  per-vertex vector here comes from the shared all-pairs structure.

Every function is a thin delegate over
:class:`repro.analysis_api.NetworkAnalysis`, which computes the whole family
from one cached all-pairs sweep ("centrality" artifact); hold a handle when
reading more than one of them (or any other quantity) on the same instance.
"""

from __future__ import annotations

import numpy as np

from ..analysis_api.handle import NetworkAnalysis
from .temporal_graph import TemporalGraph

__all__ = [
    "temporal_closeness",
    "temporal_harmonic_closeness",
    "temporal_influence_counts",
    "temporal_reach_counts",
]


def temporal_closeness(network: TemporalGraph) -> np.ndarray:
    """Temporal closeness of every vertex (read-only ``float64`` array).

    ``C(u)`` is the reciprocal of the mean temporal distance from ``u`` to
    the vertices it can reach (0.0 when it reaches none); higher is more
    central.
    """
    return NetworkAnalysis(network).closeness()


def temporal_harmonic_closeness(network: TemporalGraph) -> np.ndarray:
    """Temporal harmonic closeness of every vertex (read-only, in ``[0, 1]``).

    ``H(u) = (1/(n−1)) Σ_{t ≠ u} 1/δ(u, t)`` with ``1/∞ = 0`` for
    unreachable targets.
    """
    return NetworkAnalysis(network).harmonic_closeness()


def temporal_influence_counts(network: TemporalGraph) -> np.ndarray:
    """Number of vertices ``t ≠ u`` temporally reachable *from* each ``u``."""
    return NetworkAnalysis(network).influence_counts()


def temporal_reach_counts(network: TemporalGraph) -> np.ndarray:
    """Number of vertices ``s ≠ v`` with a journey *to* each ``v``."""
    return NetworkAnalysis(network).reach_counts()
