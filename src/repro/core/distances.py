"""All-pairs temporal distances and the temporal diameter (Definition 5).

Every quantity in this module is a view over the per-instance arrival
structure managed by :class:`repro.analysis_api.NetworkAnalysis`: the batched
:func:`repro.core.journeys.earliest_arrival_matrix` sweep advances the full
``(sources × vertices)`` arrival state one label group at a time over the
cached :class:`~repro.core.timearc_csr.TimeArcCSR` layout, so all-pairs
temporal distances cost a *single* sweep of the time arcs instead of ``n``
independent single-source sweeps.

The free functions below are thin one-line delegates constructing a throwaway
:class:`~repro.analysis_api.NetworkAnalysis`, kept for callers who want
exactly one quantity of an instance.  Anything that reads **several**
quantities of the same instance should hold one handle instead — the handle
memoizes the sweep so every further quantity is a cheap derived view
(``benchmarks/bench_analysis_cache.py`` gates the resulting speedup).  The
looped per-source path is kept as :func:`temporal_distance_matrix_reference`
for cross-validation; ``benchmarks/bench_temporal_diameter.py`` tracks the
batched engine's speedup over it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis_api.handle import DistanceSummary, NetworkAnalysis
from ..types import as_vertex_array
from .journeys import earliest_arrival_matrix, earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = [
    "DistanceSummary",
    "temporal_distance_matrix",
    "temporal_distance_matrix_reference",
    "temporal_distance_summary",
    "temporal_eccentricities",
    "temporal_diameter",
    "temporal_radius",
    "average_temporal_distance",
]


def temporal_distance_matrix(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Temporal distances δ(s, v) for every requested source ``s``.

    Thin wrapper over the batched engine
    :func:`repro.core.journeys.earliest_arrival_matrix` with the paper's
    convention ``start_time = 0``.

    Parameters
    ----------
    network:
        The temporal network.
    sources:
        Sources to compute rows for; defaults to all vertices.

    Returns
    -------
    numpy.ndarray
        ``(len(sources), n)`` ``int64`` matrix.  Entry ``[i, v]`` is the
        earliest arrival at ``v`` from ``sources[i]`` (0 on the diagonal,
        :data:`~repro.types.UNREACHABLE` when no journey exists).

    See Also
    --------
    repro.analysis_api.NetworkAnalysis.distances_from : the memoizing
        equivalent on an analysis handle.
    """
    return earliest_arrival_matrix(network, sources)


def temporal_distance_matrix_reference(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Looped reference path: one single-source sweep per requested row.

    Kept as the cross-validation baseline for the batched engine and as the
    "looped path" side of the speedup benchmark in
    ``benchmarks/bench_temporal_diameter.py``.
    """
    n = network.n
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = [int(s) for s in as_vertex_array(sources, n)]
    rows = [earliest_arrival_times(network, s) for s in source_list]
    if not rows:
        return np.empty((0, n), dtype=np.int64)
    return np.stack(rows, axis=0)


def temporal_distance_summary(network: TemporalGraph) -> DistanceSummary:
    """Compute diameter, radius, average distance and reachability together.

    One call to the batched engine feeds all four statistics.  Equivalent to
    ``NetworkAnalysis(network).summary``; hold the handle yourself if you need
    any *further* quantity of the same instance.

    Returns
    -------
    DistanceSummary
        The bundled statistics for this instance.
    """
    return NetworkAnalysis(network).summary


def temporal_eccentricities(network: TemporalGraph) -> np.ndarray:
    """Temporal eccentricity of every vertex: ``max_v δ(s, v)``.

    The maximum includes unreachable targets, so a vertex that cannot reach
    the whole graph has eccentricity :data:`~repro.types.UNREACHABLE`.
    Returns a read-only array (a view of the throwaway handle's cache).
    """
    return NetworkAnalysis(network).eccentricities()


def temporal_diameter(network: TemporalGraph) -> int:
    """The temporal diameter: ``max_{s,t} δ(s, t)`` for this instance.

    Definition 5 of the paper defines the Temporal Diameter of the *random*
    clique as the expectation of this quantity over instances; the Monte-Carlo
    layer estimates that expectation by averaging this per-instance value.

    Returns :data:`~repro.types.UNREACHABLE` when some ordered pair has no
    journey.
    """
    return NetworkAnalysis(network).diameter


def temporal_radius(network: TemporalGraph) -> int:
    """The minimum temporal eccentricity over all vertices."""
    return NetworkAnalysis(network).radius


def average_temporal_distance(network: TemporalGraph) -> float:
    """Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey.

    Returns ``nan`` when no ordered pair is temporally reachable.
    """
    return NetworkAnalysis(network).average_distance
