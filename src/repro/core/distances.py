"""All-pairs temporal distances and the temporal diameter (Definition 5).

Every quantity in this module is a reduction of the batched arrival matrix
produced by :func:`repro.core.journeys.earliest_arrival_matrix`: the full
``(sources × vertices)`` arrival state is advanced one label group at a time
over the cached :class:`~repro.core.timearc_csr.TimeArcCSR` layout, so
all-pairs temporal distances cost a *single* sweep of the time arcs instead of
``n`` independent single-source sweeps.  With the saturation early-exit this
makes exact all-pairs distances on the normalized random clique for ``n`` in
the hundreds take milliseconds; ``benchmarks/bench_temporal_diameter.py``
tracks the speedup over the looped per-source path (kept here as
:func:`temporal_distance_matrix_reference` for cross-validation).

For Monte-Carlo trials that need several statistics of the same instance,
:func:`temporal_distance_summary` computes the diameter, radius, average
distance and reachable fraction from one shared sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..types import UNREACHABLE, as_vertex_array
from .journeys import earliest_arrival_matrix, earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = [
    "DistanceSummary",
    "temporal_distance_matrix",
    "temporal_distance_matrix_reference",
    "temporal_distance_summary",
    "temporal_eccentricities",
    "temporal_diameter",
    "temporal_radius",
    "average_temporal_distance",
]


def temporal_distance_matrix(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Temporal distances δ(s, v) for every requested source ``s``.

    Thin wrapper over the batched engine
    :func:`repro.core.journeys.earliest_arrival_matrix` with the paper's
    convention ``start_time = 0``.

    Parameters
    ----------
    network:
        The temporal network.
    sources:
        Sources to compute rows for; defaults to all vertices.

    Returns
    -------
    numpy.ndarray
        ``(len(sources), n)`` ``int64`` matrix.  Entry ``[i, v]`` is the
        earliest arrival at ``v`` from ``sources[i]`` (0 on the diagonal,
        :data:`~repro.types.UNREACHABLE` when no journey exists).
    """
    return earliest_arrival_matrix(network, sources)


def temporal_distance_matrix_reference(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Looped reference path: one single-source sweep per requested row.

    Kept as the cross-validation baseline for the batched engine and as the
    "looped path" side of the speedup benchmark in
    ``benchmarks/bench_temporal_diameter.py``.
    """
    n = network.n
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = [int(s) for s in as_vertex_array(sources, n)]
    rows = [earliest_arrival_times(network, s) for s in source_list]
    if not rows:
        return np.empty((0, n), dtype=np.int64)
    return np.stack(rows, axis=0)


@dataclass(frozen=True, slots=True)
class DistanceSummary:
    """All-pairs distance statistics derived from one batched sweep.

    Attributes
    ----------
    diameter:
        ``max_{s,t} δ(s, t)``; :data:`~repro.types.UNREACHABLE` if some
        ordered pair has no journey.
    radius:
        The minimum temporal eccentricity over all vertices.
    average_distance:
        Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey, or ``nan``
        when no such pair exists.
    reachable_fraction:
        Fraction of ordered pairs ``s ≠ t`` connected by a journey.
    """

    diameter: int
    radius: int
    average_distance: float
    reachable_fraction: float


def temporal_distance_summary(network: TemporalGraph) -> DistanceSummary:
    """Compute diameter, radius, average distance and reachability together.

    One call to the batched engine feeds all four statistics, which is what
    the Monte-Carlo trial functions want: sampling an instance and reading
    several of its all-pairs quantities should cost one sweep, not one sweep
    per quantity.

    Returns
    -------
    DistanceSummary
        The bundled statistics for this instance.
    """
    n = network.n
    if n <= 1:
        return DistanceSummary(
            diameter=0, radius=0, average_distance=0.0, reachable_fraction=1.0
        )
    matrix = earliest_arrival_matrix(network)
    off_diagonal = ~np.eye(n, dtype=bool)
    ecc = np.where(off_diagonal, matrix, 0).max(axis=1)
    reach_mask = off_diagonal & (matrix < UNREACHABLE)
    reachable_pairs = int(reach_mask.sum())
    if reachable_pairs:
        average = float(matrix[reach_mask].mean())
    else:
        average = float("nan")
    return DistanceSummary(
        diameter=int(ecc.max()),
        radius=int(ecc.min()),
        average_distance=average,
        reachable_fraction=reachable_pairs / float(n * (n - 1)),
    )


def temporal_eccentricities(network: TemporalGraph) -> np.ndarray:
    """Temporal eccentricity of every vertex: ``max_v δ(s, v)``.

    The maximum includes unreachable targets, so a vertex that cannot reach
    the whole graph has eccentricity :data:`~repro.types.UNREACHABLE`.
    """
    matrix = temporal_distance_matrix(network)
    if network.n <= 1:
        return np.zeros(network.n, dtype=np.int64)
    # Exclude the diagonal (distance to self is 0 and would hide unreachability
    # only in the degenerate n == 1 case anyway, but be explicit).
    masked = matrix.copy()
    np.fill_diagonal(masked, 0)
    return masked.max(axis=1)


def temporal_diameter(network: TemporalGraph) -> int:
    """The temporal diameter: ``max_{s,t} δ(s, t)`` for this instance.

    Definition 5 of the paper defines the Temporal Diameter of the *random*
    clique as the expectation of this quantity over instances; the Monte-Carlo
    layer estimates that expectation by averaging this per-instance value.

    Returns :data:`~repro.types.UNREACHABLE` when some ordered pair has no
    journey.
    """
    if network.n <= 1:
        return 0
    return int(temporal_eccentricities(network).max())


def temporal_radius(network: TemporalGraph) -> int:
    """The minimum temporal eccentricity over all vertices."""
    if network.n <= 1:
        return 0
    return int(temporal_eccentricities(network).min())


def average_temporal_distance(network: TemporalGraph) -> float:
    """Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey.

    Returns ``nan`` when no ordered pair is temporally reachable.
    """
    if network.n <= 1:
        return 0.0
    return temporal_distance_summary(network).average_distance
