"""All-pairs temporal distances and the temporal diameter (Definition 5).

The temporal distance matrix is computed by sweeping the time arcs in
ascending label order while maintaining the full ``(sources × vertices)``
arrival matrix.  For each label value the update is a batched boolean
reduction over the arcs carrying that label (an ``logical_or.reduceat`` per
head vertex), so the per-label work is a handful of vectorised NumPy
operations instead of a Python loop over sources × arcs.  On the normalized
random clique this makes exact all-pairs temporal distances for ``n`` in the
hundreds take well under a second.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import UNREACHABLE, as_vertex_array
from .journeys import earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = [
    "temporal_distance_matrix",
    "temporal_distance_matrix_reference",
    "temporal_eccentricities",
    "temporal_diameter",
    "temporal_radius",
    "average_temporal_distance",
]


def temporal_distance_matrix(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Temporal distances δ(s, v) for every requested source ``s``.

    Parameters
    ----------
    network:
        The temporal network.
    sources:
        Sources to compute rows for; defaults to all vertices.

    Returns
    -------
    numpy.ndarray
        ``(len(sources), n)`` ``int64`` matrix.  Entry ``[i, v]`` is the
        earliest arrival at ``v`` from ``sources[i]`` (0 on the diagonal,
        :data:`~repro.types.UNREACHABLE` when no journey exists).
    """
    n = network.n
    if sources is None:
        source_arr = np.arange(n, dtype=np.int64)
    else:
        source_arr = as_vertex_array(sources, n)
    num_sources = source_arr.size
    arrival = np.full((num_sources, n), UNREACHABLE, dtype=np.int64)
    arrival[np.arange(num_sources), source_arr] = 0
    if network.num_time_arcs == 0 or num_sources == 0:
        return arrival

    labels = network.time_arc_labels
    tails = network.time_arc_tails
    heads = network.time_arc_heads
    # Sort arcs by (label, head) so that, inside each label group, arcs sharing
    # a head are contiguous and can be OR-reduced with a single reduceat call.
    order = np.lexsort((heads, labels))
    labels = labels[order]
    tails = tails[order]
    heads = heads[order]

    unique_labels, group_starts = np.unique(labels, return_index=True)
    group_ends = np.append(group_starts[1:], labels.size)
    for label, lo, hi in zip(
        unique_labels.tolist(), group_starts.tolist(), group_ends.tolist()
    ):
        group_tails = tails[lo:hi]
        group_heads = heads[lo:hi]
        # Which sources can forward over each arc of this label group.
        reachable = arrival[:, group_tails] < label
        if not reachable.any():
            continue
        head_values, head_starts = np.unique(group_heads, return_index=True)
        if head_values.size == group_heads.size:
            any_reachable = reachable
        else:
            any_reachable = np.logical_or.reduceat(reachable, head_starts, axis=1)
        current = arrival[:, head_values]
        improved = any_reachable & (current > label)
        if improved.any():
            arrival[:, head_values] = np.where(improved, label, current)
    return arrival


def temporal_distance_matrix_reference(
    network: TemporalGraph, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Row-by-row reference implementation (one single-source sweep per row)."""
    n = network.n
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = [int(s) for s in as_vertex_array(sources, n)]
    rows = [earliest_arrival_times(network, s) for s in source_list]
    if not rows:
        return np.empty((0, n), dtype=np.int64)
    return np.stack(rows, axis=0)


def temporal_eccentricities(network: TemporalGraph) -> np.ndarray:
    """Temporal eccentricity of every vertex: ``max_v δ(s, v)``.

    The maximum includes unreachable targets, so a vertex that cannot reach
    the whole graph has eccentricity :data:`~repro.types.UNREACHABLE`.
    """
    matrix = temporal_distance_matrix(network)
    if network.n <= 1:
        return np.zeros(network.n, dtype=np.int64)
    # Exclude the diagonal (distance to self is 0 and would hide unreachability
    # only in the degenerate n == 1 case anyway, but be explicit).
    masked = matrix.copy()
    np.fill_diagonal(masked, 0)
    return masked.max(axis=1)


def temporal_diameter(network: TemporalGraph) -> int:
    """The temporal diameter: ``max_{s,t} δ(s, t)`` for this instance.

    Definition 5 of the paper defines the Temporal Diameter of the *random*
    clique as the expectation of this quantity over instances; the Monte-Carlo
    layer estimates that expectation by averaging this per-instance value.

    Returns :data:`~repro.types.UNREACHABLE` when some ordered pair has no
    journey.
    """
    if network.n <= 1:
        return 0
    return int(temporal_eccentricities(network).max())


def temporal_radius(network: TemporalGraph) -> int:
    """The minimum temporal eccentricity over all vertices."""
    if network.n <= 1:
        return 0
    return int(temporal_eccentricities(network).min())


def average_temporal_distance(network: TemporalGraph) -> float:
    """Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey.

    Returns ``nan`` when no ordered pair is temporally reachable.
    """
    if network.n <= 1:
        return 0.0
    matrix = temporal_distance_matrix(network).astype(np.float64)
    mask = ~np.eye(network.n, dtype=bool) & (matrix < UNREACHABLE)
    if not mask.any():
        return float("nan")
    return float(matrix[mask].mean())
