"""Latest-departure journeys: the reverse (target-major) sweep kernels.

The forward kernels (:mod:`repro.core.journeys`) answer "departing ``s`` at
``start_time``, when does each vertex first hear the message?".  This module
answers the mirrored single-*target* questions in one sweep each:

* **latest departure** — for a target ``t`` and a deadline ``D`` (defaulting
  to the lifetime), the latest label at which a journey may leave each vertex
  and still reach ``t`` using labels ``<= D``;
* **reverse reachability** — which vertices can reach ``t`` at all, i.e. the
  support of the latest-departure vector.

Semantics mirror the forward sweep exactly under *time reversal*.  Writing
``M(x) = D + 1 − x``, a journey ``v → t`` with labels ``l_1 < … < l_k <= D``
corresponds to a journey ``t → v`` in the arc-flipped network with labels
``M(l_k) < … < M(l_1)``; its arrival there is ``M(l_1)``, so

``latest_departure(G, t)[v] == M(earliest_arrival(reverse(G), t)[v])``

entry for entry (:meth:`TemporalGraph.time_reversed` builds ``reverse(G)``,
and ``tests/test_reverse_sweep.py`` pins the identity bit-for-bit).  The
conventions follow from the mirror: the target itself reports ``D + 1``
(mirror of the source's ``start_time`` arrival) and vertices that cannot
reach the target report :data:`~repro.types.NEVER` ``= 0`` (mirror of
:data:`~repro.types.UNREACHABLE`).

All kernels process the label groups of the cached target-major CSR layout
(:attr:`TemporalGraph.reverse_timearc_csr`) in *descending* order: an arc
labelled ``l`` can start a suffix towards the target exactly when its head
already departs strictly after ``l``, so a single ordered pass computes exact
latest departures; a sweep stops early once every departure is at least the
current label (later groups carry only smaller labels and max-updates with a
smaller value change nothing).  :func:`latest_departure_matrix` batches many
targets through one sweep the same way :func:`earliest_arrival_matrix`
batches sources.  A scalar pure-Python reference is kept for
cross-validation.

Like the forward module, the hot loop is pluggable: the sweep entry points
accept a ``backend=`` keyword naming a registered :mod:`repro.core.kernels`
backend and delegate the descending group advance to it; all backends are
pinned bit-identical, so the choice only affects speed.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..telemetry import active as _telemetry_active
from ..types import NEVER, as_vertex_array
from ..utils.validation import check_non_negative_int
from ._kernel_telemetry import record_sweep as _record_sweep
from .kernels import resolve_backend as _resolve_backend
from .temporal_graph import TemporalGraph

__all__ = [
    "latest_departure_times",
    "latest_departure_times_reference",
    "latest_departure_matrix",
    "latest_departure",
    "reverse_reachable_set",
]


def _validate_vertex(graph_n: int, vertex: int, role: str) -> int:
    vertex = int(vertex)
    if not 0 <= vertex < graph_n:
        raise ValueError(
            f"{role} {vertex} is not a vertex of a graph with {graph_n} vertices"
        )
    return vertex


def _resolve_deadline(network: TemporalGraph, deadline: int | None) -> int:
    if deadline is None:
        return network.lifetime
    return check_non_negative_int(deadline, "deadline")


def latest_departure_times(
    network: TemporalGraph,
    target: int,
    *,
    deadline: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Latest departure time at every vertex for journeys reaching ``target``.

    Parameters
    ----------
    network:
        The temporal network.
    target:
        Target vertex.
    deadline:
        Journeys must arrive by this time; only arcs with labels at most
        ``deadline`` may be used.  Defaults to the network's lifetime (no
        restriction), the mirror of the forward kernels' ``start_time = 0``.
    backend:
        Name of the :mod:`repro.core.kernels` backend to run the sweep on;
        ``None`` (the default) uses the ambient selection.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``n``; entry ``v`` is the largest label a
        journey ``v → target`` can start with (its departure time), or
        :data:`~repro.types.NEVER` when no journey exists.  The target itself
        reports ``deadline + 1``.
    """
    target = _validate_vertex(network.n, target, "target")
    deadline = _resolve_deadline(network, deadline)
    kernel = _resolve_backend(backend)
    recs = _telemetry_active()
    sweep_start = time.perf_counter() if recs else 0.0
    depart = np.full(network.n, NEVER, dtype=np.int64)
    depart[target] = deadline + 1
    groups_scanned = 0
    saturated = False
    if network.num_time_arcs != 0:
        csr = network.reverse_timearc_csr
        last_group = int(np.searchsorted(csr.labels, deadline, side="right"))
        groups_scanned, saturated = kernel.reverse_sweep(
            csr, depart[:, None], last_group
        )
    if recs:
        _record_sweep(
            recs,
            "kernel.reverse",
            start=sweep_start,
            tile_name="targets",
            tile=1,
            groups=groups_scanned,
            saturated=saturated,
            backend=kernel.name,
        )
    return depart


def latest_departure_matrix(
    network: TemporalGraph,
    targets: Sequence[int] | None = None,
    *,
    deadline: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Batched latest departures: one label-group sweep for many targets.

    The target-major mirror of
    :func:`repro.core.journeys.earliest_arrival_matrix`: the whole ``(T, n)``
    departure state advances one label group at a time, in descending label
    order, with the per-tail "some usable arc" masks OR-reduced on packed
    bits (``np.bitwise_or.reduceat`` over indices precomputed in the reverse
    CSR layout) — a handful of vectorised operations per label value
    regardless of how many targets are in flight.

    Parameters
    ----------
    network:
        The temporal network.
    targets:
        Targets to compute rows for; defaults to all vertices (the all-pairs
        case).
    deadline:
        Arrive-by time shared by every target; defaults to the lifetime.
    backend:
        Name of the :mod:`repro.core.kernels` backend to run the sweep on;
        ``None`` (the default) uses the ambient selection.

    Returns
    -------
    numpy.ndarray
        ``(len(targets), n)`` ``int64`` matrix; entry ``[i, v]`` is the
        latest departure from ``v`` towards ``targets[i]``
        (``deadline + 1`` on the target column,
        :data:`~repro.types.NEVER` when no journey exists).

    See Also
    --------
    latest_departure_times : the single-target specialisation.
    """
    n = network.n
    deadline = _resolve_deadline(network, deadline)
    if targets is None:
        target_arr = np.arange(n, dtype=np.int64)
    else:
        target_arr = as_vertex_array(targets, n)
    num_targets = target_arr.size
    kernel = _resolve_backend(backend)
    recs = _telemetry_active()
    sweep_start = time.perf_counter() if recs else 0.0
    # Vertex-major state: row v holds the departures from v for every target,
    # so the per-group gathers, segment reductions and scatters all touch
    # contiguous rows (the arcs of a group are sorted by tail).
    depart = np.full((n, num_targets), NEVER, dtype=np.int64)
    depart[target_arr, np.arange(num_targets)] = deadline + 1
    groups_scanned = 0
    saturated = False
    if network.num_time_arcs != 0 and num_targets != 0:
        csr = network.reverse_timearc_csr
        # Departures only ever take values strictly smaller than a head's
        # current departure, so groups labelled > deadline can never be used;
        # skip them.
        last_group = int(np.searchsorted(csr.labels, deadline, side="right"))
        groups_scanned, saturated = kernel.reverse_sweep(csr, depart, last_group)
    if recs:
        _record_sweep(
            recs,
            "kernel.reverse",
            start=sweep_start,
            tile_name="targets",
            tile=num_targets,
            groups=groups_scanned,
            saturated=saturated,
            backend=kernel.name,
        )
    return np.ascontiguousarray(depart.T)


def latest_departure_times_reference(
    network: TemporalGraph, target: int, *, deadline: int | None = None
) -> np.ndarray:
    """Scalar (pure-Python) reference implementation of latest departures.

    Used by the test suite to cross-validate both the vectorised
    single-target kernel and the batched :func:`latest_departure_matrix`
    engine.  Semantics are identical to :func:`latest_departure_times`.
    """
    target = _validate_vertex(network.n, target, "target")
    deadline = _resolve_deadline(network, deadline)
    depart = [NEVER] * network.n
    depart[target] = deadline + 1
    arcs = sorted(
        zip(
            network.time_arc_labels.tolist(),
            network.time_arc_tails.tolist(),
            network.time_arc_heads.tolist(),
        ),
        reverse=True,
    )
    index = 0
    total = len(arcs)
    while index < total and arcs[index][0] > deadline:
        index += 1
    while index < total:
        label = arcs[index][0]
        group_end = index
        while group_end < total and arcs[group_end][0] == label:
            group_end += 1
        updates: list[tuple[int, int]] = []
        for _, tail, head in arcs[index:group_end]:
            if depart[head] > label and depart[tail] < label:
                updates.append((tail, label))
        for tail, label_value in updates:
            if depart[tail] < label_value:
                depart[tail] = label_value
        index = group_end
    return np.asarray(depart, dtype=np.int64)


def latest_departure(
    network: TemporalGraph,
    source: int,
    target: int,
    *,
    deadline: int | None = None,
    backend: str | None = None,
) -> int:
    """Latest departure time of a journey ``source → target``.

    Returns :data:`~repro.types.NEVER` when no journey exists (rather than
    raising), mirroring :func:`repro.core.journeys.temporal_distance`.
    """
    depart = latest_departure_times(network, target, deadline=deadline, backend=backend)
    return int(depart[_validate_vertex(network.n, source, "source")])


def reverse_reachable_set(
    network: TemporalGraph, target: int, *, backend: str | None = None
) -> np.ndarray:
    """Vertices with a journey *to* ``target`` (including the target itself).

    The reverse mirror of :func:`repro.core.reachability.reachable_set`, and
    the per-vertex "who can influence ``target``" query; costs one reverse
    sweep instead of an all-pairs forward pass.
    """
    depart = latest_departure_times(network, target, backend=backend)
    return np.flatnonzero(depart > NEVER)
