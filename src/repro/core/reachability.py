"""Temporal reachability predicates.

Section 4 of the paper studies when a label assignment *preserves the
reachability* of the underlying graph: the property
``T_reach = "∀ u, v: ∃ (u,v)-path in G ⇔ ∃ (u,v)-journey in (G, L)"``
(Definition 6).  For connected graphs this is simply all-ordered-pairs
temporal reachability; the general form compares against static reachability
so disconnected underlying graphs are handled correctly too.

All-pairs predicates are answered from one pass of the batched engine
(:func:`repro.core.journeys.earliest_arrival_matrix` over the cached CSR
time-arc layout) rather than ``n`` single-source sweeps, which matters because
:func:`preserves_reachability` sits in the inner loop of the exhaustive OPT
search of :mod:`repro.core.price_of_randomness`.
"""

from __future__ import annotations

import numpy as np

from ..graphs.properties import bfs_distances
from ..types import UNREACHABLE
from .journeys import earliest_arrival_matrix, earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = [
    "reachability_matrix",
    "reachable_set",
    "reachable_fraction",
    "is_temporally_connected",
    "preserves_reachability",
]


def reachability_matrix(network: TemporalGraph) -> np.ndarray:
    """Boolean matrix ``R[s, v]`` = "a journey from ``s`` to ``v`` exists".

    The diagonal is ``True`` (the empty journey).
    """
    return earliest_arrival_matrix(network) < UNREACHABLE


def reachable_set(network: TemporalGraph, source: int) -> np.ndarray:
    """Vertices temporally reachable from ``source`` (including the source)."""
    arrival = earliest_arrival_times(network, source)
    return np.flatnonzero(arrival < UNREACHABLE)


def reachable_fraction(network: TemporalGraph) -> float:
    """Fraction of ordered pairs ``s ≠ t`` connected by a journey.

    Equals 1.0 exactly when the network is temporally connected; a useful
    soft metric when sweeping the number of labels per edge.
    """
    n = network.n
    if n <= 1:
        return 1.0
    reach = reachability_matrix(network)
    off_diagonal = reach.sum() - n  # the diagonal is always True
    return float(off_diagonal) / float(n * (n - 1))


def is_temporally_connected(network: TemporalGraph) -> bool:
    """Whether every ordered pair of vertices is connected by a journey."""
    return bool(reachability_matrix(network).all())


def preserves_reachability(network: TemporalGraph) -> bool:
    """The paper's ``T_reach`` property (Definition 6).

    True when, for every ordered pair ``(u, v)``, a journey exists in
    ``(G, L)`` exactly when a path exists in the underlying graph ``G``.
    A journey can only use labelled edges of ``G``, so the interesting
    direction is "path implies journey"; the converse can only fail if the
    label data were inconsistent with the graph, which the constructor forbids.
    """
    n = network.n
    if n <= 1:
        return True
    temporal_reach = reachability_matrix(network)
    graph = network.graph
    for source in range(n):
        static_reachable = bfs_distances(graph, source) >= 0
        if not np.array_equal(temporal_reach[source] | ~static_reachable,
                              np.ones(n, dtype=bool)):
            return False
        # Sanity: a journey should never exist where no static path does.
        if np.any(temporal_reach[source] & ~static_reachable):
            return False
    return True
