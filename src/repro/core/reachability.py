"""Temporal reachability predicates.

Section 4 of the paper studies when a label assignment *preserves the
reachability* of the underlying graph: the property
``T_reach = "∀ u, v: ∃ (u,v)-path in G ⇔ ∃ (u,v)-journey in (G, L)"``
(Definition 6).  For connected graphs this is simply all-ordered-pairs
temporal reachability; the general form compares against static reachability
so disconnected underlying graphs are handled correctly too.

Every predicate is a one-line delegate to
:class:`repro.analysis_api.NetworkAnalysis`, which answers all of them from
one pass of the batched engine
(:func:`repro.core.journeys.earliest_arrival_matrix` over the cached CSR
time-arc layout) rather than ``n`` single-source sweeps — this matters
because :func:`preserves_reachability` sits in the inner loop of the
exhaustive OPT search of :mod:`repro.core.price_of_randomness`.  Callers that
read several reachability/distance quantities of the same instance should
hold one handle instead of calling several free functions.
"""

from __future__ import annotations

import numpy as np

from ..analysis_api.handle import NetworkAnalysis
from ..types import UNREACHABLE
from .journeys import earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = [
    "reachability_matrix",
    "reachable_set",
    "reachable_fraction",
    "is_temporally_connected",
    "preserves_reachability",
]


def reachability_matrix(network: TemporalGraph) -> np.ndarray:
    """Boolean matrix ``R[s, v]`` = "a journey from ``s`` to ``v`` exists".

    The diagonal is ``True`` (the empty journey).  Returns a read-only array
    (a view of the throwaway handle's cache).
    """
    return NetworkAnalysis(network).reachability()


def reachable_set(network: TemporalGraph, source: int) -> np.ndarray:
    """Vertices temporally reachable from ``source`` (including the source)."""
    arrival = earliest_arrival_times(network, source)
    return np.flatnonzero(arrival < UNREACHABLE)


def reachable_fraction(network: TemporalGraph) -> float:
    """Fraction of ordered pairs ``s ≠ t`` connected by a journey.

    Equals 1.0 exactly when the network is temporally connected; a useful
    soft metric when sweeping the number of labels per edge.
    """
    return NetworkAnalysis(network).reachable_fraction


def is_temporally_connected(network: TemporalGraph) -> bool:
    """Whether every ordered pair of vertices is connected by a journey."""
    return NetworkAnalysis(network).is_temporally_connected


def preserves_reachability(network: TemporalGraph) -> bool:
    """The paper's ``T_reach`` property (Definition 6).

    True when, for every ordered pair ``(u, v)``, a journey exists in
    ``(G, L)`` exactly when a path exists in the underlying graph ``G``.
    """
    return NetworkAnalysis(network).preserves_reachability()
