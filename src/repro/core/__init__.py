"""The paper's primary contribution: random ephemeral temporal networks.

This subpackage implements:

* :class:`TemporalGraph` — an ephemeral temporal network ``(G, L)``
  (Definition 1): an underlying static (di)graph plus a set of discrete time
  labels per edge, bounded by the *lifetime* ``a``;
* label assignment strategies (:mod:`repro.core.labeling`) — the uniform
  random single-label U-RTN of Definition 4, multi-label random assignments,
  and the deterministic constructions used as baselines (box assignment of
  Section 5, spanning-tree broadcast assignment);
* journey machinery (:mod:`repro.core.journeys`,
  :mod:`repro.core.distances`) — foremost journeys, temporal distances and the
  temporal diameter (Definitions 2–5), backed by the batched multi-source
  engine over the label-grouped CSR time-arc layout
  (:mod:`repro.core.timearc_csr`);
* the Expansion Process of Algorithm 1 (:mod:`repro.core.expansion`);
* the flooding dissemination protocol of §3.5 and the random phone-call
  baseline (:mod:`repro.core.dissemination`);
* reachability guarantees and the empirical ``r(n)``
  (:mod:`repro.core.guarantees`);
* the Price of Randomness (:mod:`repro.core.price_of_randomness`);
* lifetime-scaling analysis for Theorem 5 (:mod:`repro.core.lifetime`).

The per-instance distance/reachability free functions in this package are
thin delegates over :class:`repro.analysis_api.NetworkAnalysis` — the lazy,
memoized analysis handle that shares one batched sweep across every quantity
of an instance.  Hold a handle when reading more than one quantity
(``docs/api.md`` has the migration table).
"""

from .temporal_graph import TemporalGraph
from .timearc_csr import TimeArcCSR, build_timearc_csr
from .reverse_timearc_csr import ReverseTimeArcCSR, build_reverse_timearc_csr
from .labeling import (
    assign_deterministic_labels,
    box_assignment,
    normalized_urtn,
    tree_broadcast_assignment,
    uniform_random_labels,
)
from .journeys import (
    earliest_arrival_matrix,
    earliest_arrival_times,
    earliest_arrival_times_reference,
    foremost_journey,
    foremost_journey_tree,
    temporal_distance,
)
from .reverse_journeys import (
    latest_departure,
    latest_departure_matrix,
    latest_departure_times,
    latest_departure_times_reference,
    reverse_reachable_set,
)
from .centrality import (
    temporal_closeness,
    temporal_harmonic_closeness,
    temporal_influence_counts,
    temporal_reach_counts,
)
from .journey_variants import FastestJourneyResult, fastest_journey, shortest_journey
from .distances import (
    DistanceSummary,
    average_temporal_distance,
    temporal_diameter,
    temporal_distance_matrix,
    temporal_distance_matrix_reference,
    temporal_distance_summary,
    temporal_eccentricities,
    temporal_radius,
)
from .blocked_sweeps import (
    DEFAULT_TILE_SIZE,
    BlockedSummaryAccumulator,
    BlockedSweepResult,
    ExactDistanceMoments,
    blocked_sweep_summary,
    default_tile_size,
    resolve_tile_size,
    set_default_tile_size,
    streamed_distance_summary,
    streamed_reachable_fraction,
    summary_of_distance_matrix,
    tile_size_scope,
)
from .reachability import (
    is_temporally_connected,
    preserves_reachability,
    reachability_matrix,
    reachable_fraction,
    reachable_set,
)
from .expansion import ExpansionParameters, ExpansionResult, expansion_process
from .dissemination import (
    BroadcastResult,
    flood_broadcast,
    push_phone_call_broadcast,
)
from .guarantees import (
    minimal_labels_for_reachability,
    reachability_probability,
    two_split_journey_probability,
)
from .price_of_randomness import (
    opt_labels_lower_bound,
    opt_labels_star,
    opt_labels_upper_bound,
    por_upper_bound_theorem8,
    price_of_randomness,
)
from .lifetime import (
    prefix_connectivity_time,
    temporal_diameter_lower_bound_theorem5,
)

__all__ = [
    "TemporalGraph",
    "TimeArcCSR",
    "build_timearc_csr",
    "ReverseTimeArcCSR",
    "build_reverse_timearc_csr",
    "uniform_random_labels",
    "normalized_urtn",
    "box_assignment",
    "tree_broadcast_assignment",
    "assign_deterministic_labels",
    "earliest_arrival_matrix",
    "earliest_arrival_times",
    "earliest_arrival_times_reference",
    "foremost_journey",
    "foremost_journey_tree",
    "temporal_distance",
    "latest_departure_times",
    "latest_departure_times_reference",
    "latest_departure_matrix",
    "latest_departure",
    "reverse_reachable_set",
    "temporal_closeness",
    "temporal_harmonic_closeness",
    "temporal_influence_counts",
    "temporal_reach_counts",
    "shortest_journey",
    "fastest_journey",
    "FastestJourneyResult",
    "DistanceSummary",
    "temporal_distance_matrix",
    "temporal_distance_matrix_reference",
    "temporal_distance_summary",
    "temporal_diameter",
    "temporal_eccentricities",
    "temporal_radius",
    "average_temporal_distance",
    "DEFAULT_TILE_SIZE",
    "BlockedSummaryAccumulator",
    "BlockedSweepResult",
    "ExactDistanceMoments",
    "blocked_sweep_summary",
    "default_tile_size",
    "resolve_tile_size",
    "set_default_tile_size",
    "streamed_distance_summary",
    "streamed_reachable_fraction",
    "summary_of_distance_matrix",
    "tile_size_scope",
    "reachability_matrix",
    "reachable_set",
    "reachable_fraction",
    "is_temporally_connected",
    "preserves_reachability",
    "ExpansionParameters",
    "ExpansionResult",
    "expansion_process",
    "BroadcastResult",
    "flood_broadcast",
    "push_phone_call_broadcast",
    "reachability_probability",
    "minimal_labels_for_reachability",
    "two_split_journey_probability",
    "price_of_randomness",
    "opt_labels_star",
    "opt_labels_lower_bound",
    "opt_labels_upper_bound",
    "por_upper_bound_theorem8",
    "prefix_connectivity_time",
    "temporal_diameter_lower_bound_theorem5",
]
