"""Message dissemination protocols.

Section 3.5 of the paper considers the hostile clique and the natural flooding
protocol: *"∀u, if u has the message, then when an arc out of u becomes
available, send the message through that arc."*  Under journey semantics a
vertex informed at time τ can forward over an arc labelled ``l`` exactly when
``τ < l``, so the informed-at times of the flooding protocol coincide with the
foremost-journey arrival times out of the source; the broadcast time is the
source's temporal eccentricity, which Theorem 4 bounds by ``O(log n)`` whp.

For comparison with the literature discussed in §1.1 the classic *random
phone-call push* protocol is also implemented: in every synchronous round each
informed vertex calls one uniformly random other vertex.  The paper's point is
that its model is *weaker* (randomness lives in the input labels, not in the
protocol) yet achieves the same ``Θ(log n)`` broadcast time on the clique —
the experiment layer puts the two curves side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import UNREACHABLE
from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_positive_int
from .journeys import earliest_arrival_times
from .temporal_graph import TemporalGraph

__all__ = ["BroadcastResult", "flood_broadcast", "push_phone_call_broadcast"]


@dataclass(frozen=True, slots=True)
class BroadcastResult:
    """Outcome of a broadcast from a single source.

    Attributes
    ----------
    source:
        The originating vertex.
    arrival_times:
        Time at which each vertex became informed
        (:data:`~repro.types.UNREACHABLE` if never informed; the source has
        time 0).
    broadcast_time:
        Time at which the last vertex became informed, or
        :data:`~repro.types.UNREACHABLE` if some vertex was never informed.
    num_transmissions:
        Total number of message transmissions performed by the protocol.
    """

    source: int
    arrival_times: np.ndarray
    broadcast_time: int
    num_transmissions: int

    @property
    def informed_count(self) -> int:
        """Number of vertices that eventually received the message."""
        return int(np.count_nonzero(self.arrival_times < UNREACHABLE))

    @property
    def informed_fraction(self) -> float:
        """Fraction of vertices that eventually received the message."""
        return self.informed_count / self.arrival_times.size

    @property
    def completed(self) -> bool:
        """Whether every vertex was informed."""
        return self.broadcast_time < UNREACHABLE


def flood_broadcast(network: TemporalGraph, source: int) -> BroadcastResult:
    """Run the §3.5 flooding protocol from ``source`` on a temporal network.

    Every informed vertex forwards the message on each of its out-going time
    arcs whose label is strictly later than the time the vertex became
    informed.  The number of transmissions counts every such forwarding (even
    towards already-informed vertices), matching the protocol's behaviour of
    sending blindly whenever an arc becomes available.
    """
    arrival = earliest_arrival_times(network, source)
    if network.n <= 1:
        broadcast_time = 0
    elif bool(np.all(arrival < UNREACHABLE)):
        broadcast_time = int(arrival.max())
    else:
        broadcast_time = UNREACHABLE
    # A transmission happens on every time arc whose tail was informed before
    # the arc's availability time.
    tails = network.time_arc_tails
    labels = network.time_arc_labels
    transmissions = int(np.count_nonzero(arrival[tails] < labels))
    return BroadcastResult(
        source=int(source),
        arrival_times=arrival,
        broadcast_time=broadcast_time,
        num_transmissions=transmissions,
    )


def push_phone_call_broadcast(
    n: int,
    *,
    source: int = 0,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> BroadcastResult:
    """The classic random phone-call *push* protocol on the complete graph.

    In every synchronous round each informed vertex calls one other vertex
    chosen uniformly at random and pushes the message.  The protocol stops
    when everyone is informed (or after ``max_rounds``).  Known to take
    ``log₂ n + ln n + o(log n)`` rounds whp (Frieze & Grimmett; Pittel) — the
    baseline the paper compares its model against in §1.1.

    Returns
    -------
    BroadcastResult
        ``arrival_times[v]`` is the round in which ``v`` was informed
        (0 for the source); ``num_transmissions`` counts one transmission per
        informed vertex per round.
    """
    n = check_positive_int(n, "n")
    if not 0 <= source < n:
        raise ValueError(f"source {source} is not a vertex of a clique with {n} vertices")
    rng = normalize_rng(seed)
    if max_rounds is None:
        # Generous cap: the protocol needs ~log2 n + ln n rounds whp.
        max_rounds = max(16, int(8 * np.log2(max(n, 2)) + 16))

    arrival = np.full(n, UNREACHABLE, dtype=np.int64)
    arrival[source] = 0
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    transmissions = 0
    round_index = 0
    while not informed.all() and round_index < max_rounds:
        round_index += 1
        callers = np.flatnonzero(informed)
        transmissions += callers.size
        # Each caller picks a uniformly random vertex different from itself.
        targets = rng.integers(0, n - 1, size=callers.size)
        targets = np.where(targets >= callers, targets + 1, targets)
        newly = targets[~informed[targets]]
        if newly.size:
            informed[newly] = True
            # A vertex called by several informed vertices in the same round is
            # informed once; np.minimum keeps the earliest round.
            np.minimum.at(arrival, newly, round_index)
    broadcast_time = int(arrival.max()) if informed.all() else UNREACHABLE
    return BroadcastResult(
        source=int(source),
        arrival_times=arrival,
        broadcast_time=broadcast_time,
        num_transmissions=int(transmissions),
    )
