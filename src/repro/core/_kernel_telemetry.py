"""Shared telemetry emit helper for the CSR sweep kernels.

The kernels (:mod:`repro.core.journeys`, :mod:`repro.core.reverse_journeys`)
check :func:`repro.telemetry.active` exactly once per call; when no recorder is
attached the only cost is that check plus a handful of scalar assignments, so
the disabled path stays indistinguishable from the uninstrumented kernels
(pinned by ``benchmarks/bench_telemetry.py``).  When recorders are active,
:func:`record_sweep` emits the per-sweep counters and the wall-clock timing in
one place so the forward and reverse kernels report symmetric names
(``kernel.forward.*`` / ``kernel.reverse.*``).
"""

from __future__ import annotations

import time
from typing import Sequence

from ..telemetry import TelemetryRecorder, active

__all__ = ["active", "record_sweep"]


def record_sweep(
    recs: Sequence[TelemetryRecorder],
    prefix: str,
    *,
    start: float,
    tile_name: str,
    tile: int,
    groups: int,
    saturated: bool,
    backend: str,
) -> None:
    """Record one finished label-group sweep on every active recorder.

    Emits ``<prefix>.sweeps`` (one per kernel call), ``<prefix>.<tile_name>``
    (the batch width — sources or targets in flight), ``<prefix>.groups_scanned``
    (label groups actually visited before completion or early exit),
    ``<prefix>.saturation_exits`` (only when the sweep terminated early via the
    saturation check), ``<prefix>.backend.<backend>`` (which kernel backend ran
    the sweep — see :mod:`repro.core.kernels`) and the ``<prefix>.sweep_ms``
    wall-clock timing.
    """
    duration_ms = (time.perf_counter() - start) * 1e3
    for rec in recs:
        rec.counter(f"{prefix}.sweeps")
        rec.counter(f"{prefix}.{tile_name}", tile)
        rec.counter(f"{prefix}.groups_scanned", groups)
        if saturated:
            rec.counter(f"{prefix}.saturation_exits")
        rec.counter(f"{prefix}.backend.{backend}")
        rec.observe_ms(f"{prefix}.sweep_ms", duration_ms)
