"""Empirical reachability guarantees: estimating the paper's ``r(n)``.

Definition 7: an experiment assigning ``r(n)`` independent uniform labels per
edge *strongly guarantees temporal reachability whp* when the property
``T_reach`` holds with probability at least ``1 − n^{−a}`` for some ``a ≥ 1``.
Definition 8 defines ``r(n)`` as the smallest such number of labels.

At laptop scale we estimate the reachability probability by Monte Carlo and
locate the empirical ``r(n)`` for a (configurable, less extreme) target
probability.  Because the reachability probability is monotone non-decreasing
in ``r`` (adding labels can only create journeys), a doubling search followed
by a binary search finds the threshold with ``O(log r)`` probability
estimates; the linear sweep is kept for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.static_graph import StaticGraph
from ..randomness.distributions import LabelDistribution
from ..utils.seeding import SeedLike, spawn_rngs
from ..utils.validation import check_positive_int, check_probability
from .labeling import uniform_random_labels
from .reachability import preserves_reachability

__all__ = [
    "reachability_probability",
    "minimal_labels_for_reachability",
    "minimal_labels_linear_sweep",
    "two_split_journey_probability",
    "two_split_journey_probability_analytic",
]


def reachability_probability(
    graph: StaticGraph,
    labels_per_edge: int,
    *,
    lifetime: int | None = None,
    trials: int = 50,
    distribution: LabelDistribution | None = None,
    seed: SeedLike = None,
) -> float:
    """Estimate ``P[T_reach]`` for ``r`` uniform labels per edge by Monte Carlo.

    Parameters
    ----------
    graph:
        The underlying graph.
    labels_per_edge:
        The number of independent labels per edge, the paper's ``r``.
    lifetime:
        Label range ``a`` (defaults to ``n``, the normalized case).
    trials:
        Number of independent instances sampled.
    distribution:
        Optional non-uniform label distribution (F-CASE).
    seed:
        RNG seed.
    """
    trials = check_positive_int(trials, "trials")
    rngs = spawn_rngs(seed, trials)
    successes = 0
    for rng in rngs:
        network = uniform_random_labels(
            graph,
            labels_per_edge=labels_per_edge,
            lifetime=lifetime,
            distribution=distribution,
            seed=rng,
        )
        if preserves_reachability(network):
            successes += 1
    return successes / trials


def minimal_labels_for_reachability(
    graph: StaticGraph,
    *,
    target_probability: float = 0.9,
    lifetime: int | None = None,
    trials: int = 30,
    r_max: int | None = None,
    seed: SeedLike = None,
) -> int:
    """Empirical ``r(n)``: smallest ``r`` whose estimated ``P[T_reach]`` meets the target.

    A doubling phase finds an upper bracket, then binary search narrows it
    down.  Both phases reuse fresh independent trials for every probed ``r``
    (the estimates are noisy; with the default 30 trials the returned value is
    an estimate of the threshold, which is what the experiments report).

    Raises
    ------
    ConfigurationError
        If no ``r <= r_max`` reaches the target probability.
    """
    target_probability = check_probability(target_probability, "target_probability")
    a = lifetime if lifetime is not None else graph.n
    if r_max is None:
        r_max = max(4 * a, 16)
    r_max = check_positive_int(r_max, "r_max")
    rngs = iter(spawn_rngs(seed, 2 * (int(np.log2(r_max)) + 4)))

    def estimate(r: int) -> float:
        return reachability_probability(
            graph, r, lifetime=lifetime, trials=trials, seed=next(rngs)
        )

    # Doubling phase.
    r = 1
    while r <= r_max:
        if estimate(r) >= target_probability:
            break
        r *= 2
    else:
        raise ConfigurationError(
            f"no r <= {r_max} reached the target reachability probability "
            f"{target_probability}"
        )
    if r == 1:
        return 1

    # Binary search between the last failing value (r // 2) and r.
    low, high = r // 2, r
    while high - low > 1:
        mid = (low + high) // 2
        if estimate(mid) >= target_probability:
            high = mid
        else:
            low = mid
    return high


def minimal_labels_linear_sweep(
    graph: StaticGraph,
    *,
    target_probability: float = 0.9,
    lifetime: int | None = None,
    trials: int = 30,
    r_max: int = 64,
    seed: SeedLike = None,
) -> int:
    """Linear-scan variant of :func:`minimal_labels_for_reachability`.

    Kept as the ablation baseline for the threshold-search strategy (see
    DESIGN.md §5); results should agree with the binary search up to
    Monte-Carlo noise.
    """
    target_probability = check_probability(target_probability, "target_probability")
    r_max = check_positive_int(r_max, "r_max")
    rngs = spawn_rngs(seed, r_max)
    for r in range(1, r_max + 1):
        probability = reachability_probability(
            graph, r, lifetime=lifetime, trials=trials, seed=rngs[r - 1]
        )
        if probability >= target_probability:
            return r
    raise ConfigurationError(
        f"no r <= {r_max} reached the target reachability probability "
        f"{target_probability}"
    )


def two_split_journey_probability(
    n: int,
    labels_per_edge: int,
    *,
    trials: int = 2000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of the 2-split journey probability on the star.

    Theorem 6(a) considers two fixed leaves ``u₁, u₂`` of the star whose two
    incident edges each receive ``r`` uniform labels from ``{1, …, n}``, and a
    *2-split journey*: first hop labelled in ``(0, n/2)``, second hop labelled
    in ``(n/2, n)`` (Figure 2).  Only the two incident edges matter, so the
    estimate samples just those ``2·r`` labels per trial, vectorised over all
    trials.
    """
    n = check_positive_int(n, "n")
    r = check_positive_int(labels_per_edge, "labels_per_edge")
    trials = check_positive_int(trials, "trials")
    [rng] = spawn_rngs(seed, 1)
    half = n / 2.0
    first_edge = rng.integers(1, n + 1, size=(trials, r))
    second_edge = rng.integers(1, n + 1, size=(trials, r))
    has_early = (first_edge < half).any(axis=1)
    has_late = (second_edge > half).any(axis=1)
    return float(np.mean(has_early & has_late))


def two_split_journey_probability_analytic(n: int, labels_per_edge: int) -> float:
    """Exact probability of a 2-split journey for uniform labels on ``{1, …, n}``.

    ``P = (1 − P[no label < n/2])·(1 − P[no label > n/2])`` with each factor a
    product of ``r`` independent uniform draws.  Used to cross-check the
    Monte-Carlo estimate and to draw the analytic curve in the E5 experiment.
    """
    n = check_positive_int(n, "n")
    r = check_positive_int(labels_per_edge, "labels_per_edge")
    labels = np.arange(1, n + 1)
    p_early = float(np.mean(labels < n / 2.0))
    p_late = float(np.mean(labels > n / 2.0))
    return (1.0 - (1.0 - p_early) ** r) * (1.0 - (1.0 - p_late) ** r)
