"""The Price of Randomness (Definitions 7–8, Theorems 6–8).

``PoR(G) = m · r(n) / OPT`` where ``r(n)`` is the least number of uniform
random labels per edge that strongly guarantees temporal reachability whp, and
``OPT`` is the minimum total number of labels of a *deterministic* assignment
preserving reachability.

``OPT`` is NP-hard to approximate in general (the paper cites [21]), so this
module provides what the paper actually uses plus certified bounds:

* the exact value ``OPT = 2m`` for the star (Theorem 6's setting),
* the spanning-tree lower bound ``OPT ≥ n − 1``,
* the constructive upper bound ``OPT ≤ 2·(n − 1)`` via the gather/scatter
  spanning-tree assignment (:func:`repro.core.labeling.tree_broadcast_assignment`),
* exhaustive search for tiny graphs (used by the tests to certify the bounds),
* the Theorem 7 sufficient value ``r > 2·d(G)·log n`` and the resulting
  Theorem 8 upper bound on ``PoR``.
"""

from __future__ import annotations

import math
from itertools import combinations, product

from ..exceptions import ConfigurationError, GraphError
from ..graphs.properties import diameter, is_connected
from ..graphs.static_graph import StaticGraph
from ..utils.validation import check_positive_int
from .reachability import preserves_reachability
from .temporal_graph import TemporalGraph

__all__ = [
    "opt_labels_star",
    "opt_labels_lower_bound",
    "opt_labels_upper_bound",
    "opt_labels_exhaustive",
    "price_of_randomness",
    "r_sufficient_theorem7",
    "por_upper_bound_theorem8",
]


def opt_labels_star(n: int) -> int:
    """Exact ``OPT`` for the star ``K_{1,n−1}``: ``2·m = 2·(n − 1)``.

    Theorem 6: assigning labels ``{1, 2}`` to every edge preserves
    reachability (leaf → centre at time 1, centre → other leaf at time 2),
    while one label per edge cannot (the centre edge of one of the two hops
    would need to be both earlier and later than the other).
    """
    n = check_positive_int(n, "n")
    if n < 3:
        # K_{1,0} and K_{1,1} degenerate: a single label per edge suffices.
        return max(n - 1, 0)
    return 2 * (n - 1)


def opt_labels_lower_bound(graph: StaticGraph) -> int:
    """The paper's lower bound ``OPT ≥ n − 1``.

    At least ``n − 1`` edges must carry a label, otherwise the labelled edges
    cannot even contain a spanning tree of the (connected) graph.
    """
    if not is_connected(graph):
        raise GraphError("OPT is defined for connected graphs")
    return max(graph.n - 1, 0)


def opt_labels_upper_bound(graph: StaticGraph) -> int:
    """Constructive upper bound on ``OPT``.

    The gather/scatter spanning-tree assignment uses two labels on each of the
    ``n − 1`` tree edges, so ``OPT ≤ 2·(n − 1)`` for every connected graph; for
    the clique one label per edge already preserves reachability, giving the
    (sometimes smaller) bound ``m``.
    """
    if not is_connected(graph):
        raise GraphError("OPT is defined for connected graphs")
    n = graph.n
    if n <= 1:
        return 0
    bound = 2 * (n - 1)
    if n >= 2 and graph.m == (n * (n - 1) // 2 if not graph.directed else n * (n - 1)):
        # The clique reaches every pair directly through the single edge label.
        bound = min(bound, graph.m)
    return bound


def opt_labels_exhaustive(
    graph: StaticGraph, *, lifetime: int | None = None, max_total_labels: int | None = None
) -> int:
    """Exact ``OPT`` by exhaustive search — only feasible for tiny graphs.

    Enumerates assignments by increasing total label count, distributing
    ``k`` labels over the ``m`` edges and trying all label values from
    ``{1, …, lifetime}`` per edge.  Each candidate is checked with the batched
    all-pairs reachability predicate (one
    :func:`repro.core.journeys.earliest_arrival_matrix` sweep per assignment,
    via :func:`repro.core.reachability.preserves_reachability`).  Intended for
    graphs with at most ~5 edges and small lifetimes; the test suite uses it
    to certify the analytic bounds on the star and the triangle.

    Raises
    ------
    ConfigurationError
        If the search space is too large (a safety valve, not a soft limit).
    """
    if not is_connected(graph):
        raise GraphError("OPT is defined for connected graphs")
    n = graph.n
    if n <= 1:
        return 0
    m = graph.m
    a = check_positive_int(lifetime if lifetime is not None else n, "lifetime")
    if max_total_labels is None:
        max_total_labels = 2 * m
    if m > 6 or a > 8:
        raise ConfigurationError(
            "exhaustive OPT search is only supported for graphs with at most 6 "
            f"edges and lifetime at most 8 (got m={m}, lifetime={a})"
        )

    label_values = list(range(1, a + 1))
    for total in range(m, max_total_labels + 1):
        # Distribute `total` labels over m edges, each edge getting >= 1 label
        # (an edge with no label can be removed; if removing it disconnects the
        # graph the assignment cannot preserve reachability, and if it does not,
        # a smaller graph would have been found at a smaller `total`).
        for counts in _compositions(total, m):
            per_edge_choices = [
                list(combinations(label_values, count)) for count in counts
            ]
            for assignment in product(*per_edge_choices):
                network = TemporalGraph(graph, list(assignment), lifetime=a)
                if preserves_reachability(network):
                    return total
    raise ConfigurationError(
        f"no assignment with at most {max_total_labels} labels preserves "
        "reachability; increase max_total_labels"
    )


def _compositions(total: int, parts: int) -> list[tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positive integers."""
    if parts == 1:
        return [(total,)] if total >= 1 else []
    result = []
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            result.append((first,) + rest)
    return result


def price_of_randomness(graph: StaticGraph, r: int, *, opt: int | None = None) -> float:
    """``PoR(G) = m·r / OPT`` (Definition 8).

    Parameters
    ----------
    graph:
        The underlying connected graph.
    r:
        The (empirical or theoretical) number of random labels per edge that
        strongly guarantees reachability whp.
    opt:
        The value of ``OPT`` to use.  Defaults to the constructive upper bound
        :func:`opt_labels_upper_bound`, which makes the returned ratio a
        *lower bound* on the true PoR (dividing by a larger OPT can only
        shrink the ratio) — the conservative choice when reporting measured
        PoR values.
    """
    r = check_positive_int(r, "r")
    if opt is None:
        opt = opt_labels_upper_bound(graph)
    opt = check_positive_int(opt, "opt")
    return graph.m * r / opt


def r_sufficient_theorem7(n: int, diam: int) -> float:
    """Theorem 7's sufficient number of labels per edge: ``2·d(G)·log n``.

    Any ``r`` strictly larger than this guarantees temporal reachability whp
    under the box argument.  Natural logarithm, as in the paper's analysis.
    """
    n = check_positive_int(n, "n")
    diam = check_positive_int(diam, "diam")
    return 2.0 * diam * math.log(n)


def por_upper_bound_theorem8(
    n: int, m: int, diam: int, *, epsilon: float = 0.0
) -> float:
    """Theorem 8's upper bound: ``PoR(G) ≤ (2·d(G)·log n + ε) · m / (n − 1)``."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    diam = check_positive_int(diam, "diam")
    if n < 2:
        raise ValueError("the PoR bound needs at least two vertices")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return (2.0 * diam * math.log(n) + epsilon) * m / (n - 1)
