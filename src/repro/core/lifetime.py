"""Lifetime effects on the temporal diameter (Theorem 5).

Theorem 5: for the uniform random temporal clique with lifetime ``a``
asymptotically larger than ``n``, the temporal diameter is
``Ω((a/n)·log n)``.  The proof considers the arcs with labels at most ``k``;
they form an Erdős–Rényi graph ``G(n, k/a)``, which is disconnected whp when
``k/a < log n / n``, so some pair of vertices has temporal distance larger
than ``k``.

:func:`prefix_connectivity_time` computes, for a concrete instance, the
smallest time ``k`` at which the labels-≤-k edges connect the graph; it is a
per-instance certified lower bound on the temporal diameter and the measured
quantity the E2 experiment compares against ``(a/n)·log n``.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.properties import is_connected
from ..graphs.static_graph import StaticGraph
from ..types import UNREACHABLE
from ..utils.validation import check_positive_int
from .temporal_graph import TemporalGraph

__all__ = [
    "prefix_connectivity_time",
    "temporal_diameter_lower_bound_theorem5",
    "erdos_renyi_equivalent_p",
]


def prefix_connectivity_time(network: TemporalGraph) -> int:
    """Smallest ``k`` such that the edges with a label ``≤ k`` connect the graph.

    The temporal diameter of the instance is at least this value: before time
    ``k`` the available edges do not even form a connected (static) graph, so
    some ordered pair cannot have exchanged a message yet.  Returns
    :data:`~repro.types.UNREACHABLE` if the labelled edges never connect the
    graph (e.g. some edges received no labels at all).

    The candidate values of ``k`` are only the distinct labels present in the
    instance (connectivity can only change at a label value), and the search
    is binary over them because prefix connectivity is monotone in ``k``.
    """
    n = network.n
    if n <= 1:
        return 0
    labels = np.unique(network.time_arc_labels)
    if labels.size == 0:
        return UNREACHABLE

    pairs = network.graph.edge_pairs

    def connected_at(k: int) -> bool:
        keep = [
            i
            for i, edge_labels in enumerate(
                network.labels_of_edge_index(i) for i in range(network.m)
            )
            if edge_labels and edge_labels[0] <= k
        ]
        sub_edges = [tuple(pairs[i]) for i in keep]
        prefix_graph = StaticGraph(n, sub_edges, directed=False)
        return is_connected(prefix_graph)

    if not connected_at(int(labels[-1])):
        return UNREACHABLE
    lo, hi = 0, labels.size - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if connected_at(int(labels[mid])):
            hi = mid
        else:
            lo = mid + 1
    return int(labels[lo])


def temporal_diameter_lower_bound_theorem5(n: int, lifetime: int) -> float:
    """The Theorem 5 asymptotic lower bound ``(a/n)·log n`` (natural log).

    For ``a ≤ n`` the bound degrades to the normalized-case ``log n`` lower
    bound of the Remark after Theorem 4.
    """
    n = check_positive_int(n, "n")
    lifetime = check_positive_int(lifetime, "lifetime")
    scale = max(lifetime / n, 1.0)
    return scale * math.log(n)


def erdos_renyi_equivalent_p(k: int, lifetime: int) -> float:
    """The edge probability of the labels-≤-k prefix graph: ``p = k / a``.

    Used by the E2 experiment to annotate measured prefix-connectivity times
    with the equivalent Erdős–Rényi density the Theorem 5 proof reasons about.
    """
    k = check_positive_int(k, "k")
    lifetime = check_positive_int(lifetime, "lifetime")
    if k > lifetime:
        raise ValueError(f"k={k} cannot exceed the lifetime {lifetime}")
    return k / lifetime
