"""Pluggable compiled kernel backends for the forward/reverse time-arc sweeps.

Every quantity the framework computes — temporal distances, diameter,
reachability, the Theorem 5 audits, the centrality family — bottoms out in
the per-label-group advance loop of
:func:`repro.core.journeys.earliest_arrival_matrix` and its reverse twin
:func:`repro.core.reverse_journeys.latest_departure_matrix`.  This package
makes that inner loop pluggable: a backend implements the
:class:`SweepKernelBackend` protocol (advance a vertex-major ``(n, width)``
state matrix over the label groups of a CSR layout, forward or reverse) and
registers itself here; the sweep entry points resolve a backend per call and
delegate the hot loop to it.

Registered backends
-------------------
``numpy``
    The vectorised reference implementation (packed-bit segment-OR,
    saturation early-exit) — always available, and the bit-exactness
    baseline every other backend is pinned against.
``numba``
    The scalar loops of :mod:`repro.core.kernels._loops` JIT-compiled with
    ``numba.njit(cache=True)``.  Preferred automatically when numba is
    importable and the warm-up compilation succeeds.
``cython``
    The same loops as an optional ahead-of-time compiled extension
    (``_cysweeps.pyx``); registered but unavailable unless the extension has
    been built — see ``docs/kernels.md``.
``python``
    The scalar loops run *interpreted*.  Orders of magnitude slower than
    ``numpy`` and therefore never auto-selected (negative priority), but it
    keeps the exact loop logic the compiled backends execute under test in
    environments without a compiler.

Selection order (first match wins)
----------------------------------
1. the per-call ``backend=`` keyword of the sweep entry points;
2. the process default installed with :func:`set_default_backend` (the
   ``--kernel-backend`` CLI flag sets this);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. automatic: the highest-priority backend that is importable *and* passes
   its warm-up (compilation) — ``numba`` where installed, else ``numpy``.

Fallback rules: an **explicit** request (per-call keyword,
:func:`set_default_backend`) for a backend that is missing or fails to JIT
raises :class:`~repro.exceptions.ConfigurationError` — you asked for it by
name, silently computing on another backend would be a lie.  The **ambient**
paths (environment variable, automatic selection) degrade gracefully: a
``RuntimeWarning`` is emitted once per backend name and resolution falls
through to the next candidate, so NumPy-only environments run everything
unchanged.

Warm-up: a backend's :meth:`~SweepKernelBackend.warm_up` performs any
one-time compilation on a tiny throwaway instance.  The registry calls it at
most once per process (``numba`` additionally persists machine code across
processes via its on-disk cache), and the benchmarks call it explicitly so
JIT time never pollutes a timing.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ...exceptions import ConfigurationError

__all__ = [
    "ENV_VAR",
    "SweepKernelBackend",
    "available_backends",
    "backend_names",
    "backend_scope",
    "backend_unavailable_reason",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]

#: Environment variable consulted when no per-call or process default is set.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Reserved name meaning "pick the best available backend".
AUTO = "auto"


@runtime_checkable
class SweepKernelBackend(Protocol):
    """What a sweep kernel backend must provide.

    A backend advances a **vertex-major** ``(n, width)`` ``int64`` state
    matrix in place over the label groups of a CSR layout — ascending groups
    for the forward (earliest-arrival) sweep, descending for the reverse
    (latest-departure) sweep — and reports ``(groups_scanned, saturated)``
    for the telemetry record.  The state columns are the sources (forward)
    or targets (reverse) in flight; ``width == 1`` is the single-source /
    single-target case.  Results must be bit-identical to the ``numpy``
    reference backend for every input (pinned by the oracle cross-check and
    parity suites).
    """

    #: Unique registry key (also the value of the ``backend=`` kwarg,
    #: ``--kernel-backend`` flag and :data:`ENV_VAR`).
    name: str
    #: Automatic-selection rank: highest available wins.  Backends with a
    #: negative priority are never auto-selected (testing-only backends).
    priority: int

    def availability(self) -> str | None:
        """``None`` when the backend can run here, else a human-readable reason."""

    def warm_up(self) -> None:
        """Perform any one-time (JIT) compilation; idempotent."""

    def forward_sweep(
        self, csr, state: np.ndarray, first_group: int
    ) -> tuple[int, bool]:
        """Advance ``state`` over groups ``first_group ...`` ascending."""

    def reverse_sweep(
        self, csr, state: np.ndarray, last_group: int
    ) -> tuple[int, bool]:
        """Advance ``state`` over groups ``last_group - 1 ... 0`` descending."""


_REGISTRY: dict[str, SweepKernelBackend] = {}
#: Backends whose warm-up has already succeeded this process.
_ready: set[str] = set()
#: Backend name → reason, for backends whose warm-up failed this process.
_failed: dict[str, str] = {}
#: Backend names an ambient-path fallback warning was already emitted for.
_warned: set[str] = set()
#: The process default installed by :func:`set_default_backend` (None = unset).
_default_name: str | None = None
#: Memoized ambient resolution: (effective request name, backend).
_cached_ambient: tuple[str, SweepKernelBackend] | None = None


def register_backend(backend: SweepKernelBackend, *, replace: bool = False) -> None:
    """Register a backend under ``backend.name``.

    Third-party backends only need to satisfy :class:`SweepKernelBackend`
    and call this; they become selectable by name everywhere (kwarg, CLI,
    environment variable) and are picked up by the cross-validation suites.
    """
    global _cached_ambient
    name = backend.name
    if not name or name == AUTO:
        raise ConfigurationError(f"invalid kernel backend name {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"kernel backend {name!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[name] = backend
    _ready.discard(name)
    _failed.pop(name, None)
    _warned.discard(name)
    _cached_ambient = None


def backend_names() -> tuple[str, ...]:
    """Names of every registered backend, best automatic priority first."""
    return tuple(
        sorted(_REGISTRY, key=lambda name: (-_REGISTRY[name].priority, name))
    )


def get_backend(name: str) -> SweepKernelBackend:
    """The registered backend called ``name`` (no availability check)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; registered: {list(backend_names())}"
        ) from None


def backend_unavailable_reason(name: str) -> str | None:
    """Why ``name`` cannot run here (``None`` when it can).

    Combines the backend's own :meth:`~SweepKernelBackend.availability`
    answer with any warm-up failure recorded earlier in this process.
    """
    backend = get_backend(name)
    if name in _failed:
        return _failed[name]
    return backend.availability()


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends that can run here, best first."""
    return tuple(
        name for name in backend_names() if backend_unavailable_reason(name) is None
    )


def _ensure_ready(backend: SweepKernelBackend) -> str | None:
    """Warm the backend up once; return ``None`` on success, else the reason."""
    name = backend.name
    if name in _ready:
        return None
    reason = backend_unavailable_reason(name)
    if reason is not None:
        return reason
    try:
        backend.warm_up()
    except Exception as exc:  # noqa: BLE001 - any compile failure must not crash
        reason = f"warm-up (JIT compilation) failed: {exc!r}"
        _failed[name] = reason
        return reason
    _ready.add(name)
    return None


def _auto_backend() -> SweepKernelBackend:
    """Highest-priority backend that warms up; ``numpy`` is the guaranteed floor."""
    for name in backend_names():
        backend = _REGISTRY[name]
        if backend.priority < 0:
            continue
        if _ensure_ready(backend) is None:
            return backend
    raise ConfigurationError(
        "no usable kernel backend is registered (the built-in numpy reference "
        "backend is missing — was the registry tampered with?)"
    )


def _resolve_strict(name: str) -> SweepKernelBackend:
    if name == AUTO:
        return _auto_backend()
    backend = get_backend(name)
    reason = _ensure_ready(backend)
    if reason is not None:
        raise ConfigurationError(
            f"kernel backend {name!r} is not usable here: {reason}"
        )
    return backend


def resolve_backend(name: str | None = None) -> SweepKernelBackend:
    """Resolve the backend one sweep call should use.

    ``name`` is the per-call request (strict: unknown or unusable names
    raise).  With ``name=None`` the ambient selection order applies —
    process default, then :data:`ENV_VAR`, then automatic — and unusable
    ambient requests fall back gracefully with a one-time
    ``RuntimeWarning``.
    """
    global _cached_ambient
    if name is not None:
        return _resolve_strict(name)
    requested = _default_name or os.environ.get(ENV_VAR) or AUTO
    if _cached_ambient is not None and _cached_ambient[0] == requested:
        return _cached_ambient[1]
    if requested == AUTO:
        backend = _auto_backend()
    else:
        try:
            backend = _resolve_strict(requested)
        except ConfigurationError as exc:
            if requested not in _warned:
                _warned.add(requested)
                warnings.warn(
                    f"{exc}; falling back to automatic kernel backend selection",
                    RuntimeWarning,
                    stacklevel=2,
                )
            backend = _auto_backend()
    _cached_ambient = (requested, backend)
    return backend


def default_backend() -> str:
    """Name of the backend an unqualified sweep call would use right now."""
    return resolve_backend(None).name


def set_default_backend(name: str | None) -> str | None:
    """Install ``name`` as the process-wide default; returns the previous one.

    The name is validated (and warmed up) eagerly, so a typo or a missing
    compiled backend fails at configuration time rather than mid-run.
    ``None`` clears the default, restoring environment-variable/automatic
    selection.  ``"auto"`` is accepted and pins automatic selection,
    shadowing the environment variable.
    """
    global _default_name, _cached_ambient
    if name is not None:
        _resolve_strict(name)
    previous = _default_name
    _default_name = name
    _cached_ambient = None
    return previous


@contextmanager
def backend_scope(name: str | None, *, strict: bool = True) -> Iterator[None]:
    """Temporarily install ``name`` as the process default.

    With ``strict=False`` an unusable name degrades to a one-time
    ``RuntimeWarning`` plus automatic selection instead of raising — the
    mode the parallel engine's workers use, so a shard shipped to a machine
    without the parent's compiled backend still runs (bit-identically, on
    the fallback backend) rather than dying.
    """
    global _default_name, _cached_ambient
    if name is not None and strict:
        _resolve_strict(name)
    elif name is not None and name != AUTO:
        try:
            _resolve_strict(name)
        except ConfigurationError as exc:
            if name not in _warned:
                _warned.add(name)
                warnings.warn(
                    f"{exc}; falling back to automatic kernel backend selection",
                    RuntimeWarning,
                    stacklevel=3,
                )
            name = AUTO
    previous = _default_name
    _default_name = name
    _cached_ambient = None
    try:
        yield
    finally:
        _default_name = previous
        _cached_ambient = None


def _register_builtin_backends() -> None:
    from .cython_backend import CythonBackend
    from .numba_backend import NumbaBackend
    from .numpy_backend import NumpyBackend
    from .python_backend import PythonLoopBackend

    register_backend(NumpyBackend())
    register_backend(NumbaBackend())
    register_backend(CythonBackend())
    register_backend(PythonLoopBackend())


_register_builtin_backends()
