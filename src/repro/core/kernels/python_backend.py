"""The interpreted scalar backend — the compiled backends' logic, under test.

Runs the exact loop bodies of :mod:`repro.core.kernels._loops` (the ones the
numba backend JIT-compiles and the Cython extension mirrors) in the plain
Python interpreter.  It is orders of magnitude slower than the ``numpy``
reference and exists purely so the cross-validation suites can pin the
*scalar loop logic* bit-identical to the reference in every environment —
including the NumPy-only containers where no JIT or C compiler is installed.

Never auto-selected (negative priority); request it explicitly with
``backend="python"`` / ``--kernel-backend python``.
"""

from __future__ import annotations

import numpy as np

from ._loops import forward_sweep_loop, reverse_sweep_loop

__all__ = ["PythonLoopBackend"]


class PythonLoopBackend:
    """Interpreted execution of the shared scalar sweep loops."""

    name = "python"
    priority = -10

    def availability(self) -> str | None:
        return None

    def warm_up(self) -> None:
        return None

    def forward_sweep(self, csr, state: np.ndarray, first_group: int) -> tuple[int, bool]:
        return forward_sweep_loop(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, first_group
        )

    def reverse_sweep(self, csr, state: np.ndarray, last_group: int) -> tuple[int, bool]:
        return reverse_sweep_loop(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, last_group
        )

    def __repr__(self) -> str:
        return "PythonLoopBackend()"
