"""Scalar sweep loop bodies shared by the compiled kernel backends.

These two functions are the *entire* algorithmic content of the compiled
backends: the forward ascending-label advance and the reverse
descending-label advance, written as plain Python loops over the flat CSR
column arrays.  They are deliberately free of any NumPy vectorisation, any
Python-object state and any closure capture so that

* :mod:`repro.core.kernels.numba_backend` can compile them unchanged with
  ``numba.njit(cache=True)``;
* :mod:`repro.core.kernels.python_backend` can run them interpreted, which
  keeps the exact loop logic under test (bit-identical to the NumPy
  reference) even in environments where no JIT compiler is installed;
* ``src/repro/core/kernels/_cysweeps.pyx`` mirrors them line for line for
  the optional Cython build.

Semantics (identical to the NumPy reference backend):

* **forward** — groups ascend; an arc labelled ``l`` forwards for a source
  column ``s`` exactly when ``state[tail, s] < l`` and improves the head
  exactly when ``state[head, s] > l``.  In-place updates inside a group are
  safe: an update writes exactly ``l``, which can neither enable
  (``l < l`` is false) nor disable (only entries ``> l`` are overwritten)
  another arc of the same group, so the result is independent of arc order.
* **reverse** — the mirror: groups descend; an arc labelled ``l`` extends a
  journey suffix for target column ``t`` exactly when ``state[head, t] > l``
  and improves the tail exactly when ``state[tail, t] < l``.
* **saturation early-exit** — checked only after a group that improved
  something, exactly like the NumPy backend: once no entry exceeds (forward)
  / falls below (reverse) the current label, no later group can change
  anything.

Both functions mutate ``state`` — the ``(n, width)`` vertex-major int64
matrix — in place and return ``(groups_scanned, saturated)`` for the
telemetry record.
"""

from __future__ import annotations

__all__ = ["forward_sweep_loop", "reverse_sweep_loop"]


def forward_sweep_loop(labels, arc_offsets, tails, heads, state, first_group):
    """Ascending-label advance of the earliest-arrival state, in place."""
    num_groups = labels.shape[0]
    n = state.shape[0]
    width = state.shape[1]
    groups_scanned = 0
    saturated = False
    for group in range(first_group, num_groups):
        groups_scanned += 1
        label = labels[group]
        improved = False
        for arc in range(arc_offsets[group], arc_offsets[group + 1]):
            tail_row = state[tails[arc]]
            head_row = state[heads[arc]]
            for column in range(width):
                if tail_row[column] < label and head_row[column] > label:
                    head_row[column] = label
                    improved = True
        if improved:
            saturated = True
            for vertex in range(n):
                row = state[vertex]
                for column in range(width):
                    if row[column] > label:
                        saturated = False
                        break
                if not saturated:
                    break
            if saturated:
                break
    return groups_scanned, saturated


def reverse_sweep_loop(labels, arc_offsets, tails, heads, state, last_group):
    """Descending-label advance of the latest-departure state, in place.

    ``last_group`` is the *exclusive* upper group bound (the first group
    whose label exceeds the deadline); the sweep runs ``last_group - 1``
    down to 0.
    """
    n = state.shape[0]
    width = state.shape[1]
    groups_scanned = 0
    saturated = False
    for group in range(last_group - 1, -1, -1):
        groups_scanned += 1
        label = labels[group]
        improved = False
        for arc in range(arc_offsets[group], arc_offsets[group + 1]):
            tail_row = state[tails[arc]]
            head_row = state[heads[arc]]
            for column in range(width):
                if head_row[column] > label and tail_row[column] < label:
                    tail_row[column] = label
                    improved = True
        if improved:
            saturated = True
            for vertex in range(n):
                row = state[vertex]
                for column in range(width):
                    if row[column] < label:
                        saturated = False
                        break
                if not saturated:
                    break
            if saturated:
                break
    return groups_scanned, saturated
