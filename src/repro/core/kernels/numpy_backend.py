"""The vectorised NumPy sweep backend — the always-available reference.

This is the batched engine PR 1/PR 6 built, moved behind the
:class:`~repro.core.kernels.SweepKernelBackend` protocol unchanged: per label
group, the per-column "can forward" masks are OR-reduced over the arcs
sharing a head (forward) or tail (reverse) on **packed bits**
(``np.packbits`` + ``np.bitwise_or.reduceat``), improvements are applied
with one ``np.where`` scatter, and the sweep exits early once the state
saturates.  A dedicated ``width == 1`` path keeps the single-source /
single-target calls on the cheaper 1-D ``np.minimum.at`` /
``np.maximum.at`` code the free functions always used.

Every other backend is pinned bit-identical to this one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Vectorised reference implementation of both sweeps."""

    name = "numpy"
    priority = 10

    def availability(self) -> str | None:
        return None

    def warm_up(self) -> None:
        return None

    # ------------------------------------------------------------------ #
    # forward (ascending labels, earliest arrivals)
    # ------------------------------------------------------------------ #
    def forward_sweep(self, csr, state: np.ndarray, first_group: int) -> tuple[int, bool]:
        if state.shape[1] == 1:
            return self._forward_single(csr, state[:, 0], first_group)
        labels = csr.labels
        offsets = csr.arc_offsets
        tails = csr.tails
        head_values = csr.head_values
        head_offsets = csr.head_offsets
        head_starts = csr.head_starts
        width = state.shape[1]
        groups_scanned = 0
        saturated = False
        for group in range(first_group, labels.size):
            groups_scanned += 1
            label = int(labels[group])
            lo, hi = int(offsets[group]), int(offsets[group + 1])
            # Which columns can forward over each arc of this label group.
            reachable = state[tails[lo:hi]] < label
            if not reachable.any():
                continue
            hlo, hhi = int(head_offsets[group]), int(head_offsets[group + 1])
            if hhi - hlo == hi - lo:
                # Every arc in the group has a distinct head: nothing to reduce.
                any_reachable = reachable
            else:
                # Segment-OR over each head's run of arcs, on packed bits: a
                # bitwise reduceat over (arcs, width/8) bytes is an order of
                # magnitude cheaper than logical_or.reduceat on unpacked bools.
                packed = np.packbits(reachable, axis=1)
                segment_or = np.bitwise_or.reduceat(
                    packed, head_starts[hlo:hhi], axis=0
                )
                any_reachable = np.unpackbits(
                    segment_or, axis=1, count=width
                ).view(np.bool_)
            group_heads = head_values[hlo:hhi]
            current = state[group_heads]
            improved = any_reachable & (current > label)
            if improved.any():
                state[group_heads] = np.where(improved, label, current)
                # Saturation early-exit: once no entry exceeds the current
                # label, no later (larger) label can improve anything.
                if int(state.max()) <= label:
                    saturated = True
                    break
        return groups_scanned, saturated

    def _forward_single(
        self, csr, state: np.ndarray, first_group: int
    ) -> tuple[int, bool]:
        labels = csr.labels
        offsets = csr.arc_offsets
        tails = csr.tails
        heads = csr.heads
        groups_scanned = 0
        saturated = False
        for group in range(first_group, labels.size):
            groups_scanned += 1
            label = int(labels[group])
            lo, hi = int(offsets[group]), int(offsets[group + 1])
            usable = state[tails[lo:hi]] < label
            if not usable.any():
                continue
            np.minimum.at(state, heads[lo:hi][usable], label)
            if int(state.max()) <= label:
                saturated = True
                break
        return groups_scanned, saturated

    # ------------------------------------------------------------------ #
    # reverse (descending labels, latest departures)
    # ------------------------------------------------------------------ #
    def reverse_sweep(self, csr, state: np.ndarray, last_group: int) -> tuple[int, bool]:
        if state.shape[1] == 1:
            return self._reverse_single(csr, state[:, 0], last_group)
        labels = csr.labels
        offsets = csr.arc_offsets
        heads = csr.heads
        tail_values = csr.tail_values
        tail_offsets = csr.tail_offsets
        tail_starts = csr.tail_starts
        width = state.shape[1]
        groups_scanned = 0
        saturated = False
        for group in range(last_group - 1, -1, -1):
            groups_scanned += 1
            label = int(labels[group])
            lo, hi = int(offsets[group]), int(offsets[group + 1])
            # Which columns each arc of this group can forward towards.
            reachable = state[heads[lo:hi]] > label
            if not reachable.any():
                continue
            tlo, thi = int(tail_offsets[group]), int(tail_offsets[group + 1])
            if thi - tlo == hi - lo:
                # Every arc in the group has a distinct tail: nothing to reduce.
                any_reachable = reachable
            else:
                # Same packed-bit segment-OR as the forward engine, over each
                # tail's run of arcs.
                packed = np.packbits(reachable, axis=1)
                segment_or = np.bitwise_or.reduceat(
                    packed, tail_starts[tlo:thi], axis=0
                )
                any_reachable = np.unpackbits(
                    segment_or, axis=1, count=width
                ).view(np.bool_)
            group_tails = tail_values[tlo:thi]
            current = state[group_tails]
            improved = any_reachable & (current < label)
            if improved.any():
                state[group_tails] = np.where(improved, label, current)
                # Saturation early-exit: once no entry is below the current
                # label, no later (smaller) label can improve anything.
                if int(state.min()) >= label:
                    saturated = True
                    break
        return groups_scanned, saturated

    def _reverse_single(
        self, csr, state: np.ndarray, last_group: int
    ) -> tuple[int, bool]:
        labels = csr.labels
        offsets = csr.arc_offsets
        tails = csr.tails
        heads = csr.heads
        groups_scanned = 0
        saturated = False
        for group in range(last_group - 1, -1, -1):
            groups_scanned += 1
            label = int(labels[group])
            lo, hi = int(offsets[group]), int(offsets[group + 1])
            usable = state[heads[lo:hi]] > label
            if not usable.any():
                continue
            np.maximum.at(state, tails[lo:hi][usable], label)
            if int(state.min()) >= label:
                saturated = True
                break
        return groups_scanned, saturated

    def __repr__(self) -> str:
        return "NumpyBackend()"
