"""Optional Cython sweep backend (ahead-of-time compiled extension).

A stub behind the same :class:`~repro.core.kernels.SweepKernelBackend`
interface: it delegates to the compiled extension
``repro.core.kernels._cysweeps`` when that has been built from the shipped
``_cysweeps.pyx`` (which mirrors :mod:`repro.core.kernels._loops` line for
line), and reports itself unavailable otherwise — the registry's ambient
selection then simply never picks it.  ``docs/kernels.md`` has the build
recipe; no part of the repository requires the extension to exist.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CythonBackend"]


class CythonBackend:
    """AOT-compiled execution of the shared scalar sweep loops."""

    name = "cython"
    priority = 20

    def __init__(self) -> None:
        self._module = None

    def _load(self):
        if self._module is None:
            from . import _cysweeps  # type: ignore[attr-defined]

            self._module = _cysweeps
        return self._module

    def availability(self) -> str | None:
        if self._module is not None:
            return None
        try:
            self._load()
        except ImportError:
            return (
                "the compiled extension repro.core.kernels._cysweeps is not "
                "built (cythonize _cysweeps.pyx first — see docs/kernels.md)"
            )
        return None

    def warm_up(self) -> None:
        self._load()

    def forward_sweep(self, csr, state: np.ndarray, first_group: int) -> tuple[int, bool]:
        module = self._load()
        groups, saturated = module.forward_sweep_loop(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, first_group
        )
        return int(groups), bool(saturated)

    def reverse_sweep(self, csr, state: np.ndarray, last_group: int) -> tuple[int, bool]:
        module = self._load()
        groups, saturated = module.reverse_sweep_loop(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, last_group
        )
        return int(groups), bool(saturated)

    def __repr__(self) -> str:
        state = "loaded" if self._module is not None else "not built"
        return f"CythonBackend({state})"
