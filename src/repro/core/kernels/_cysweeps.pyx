# cython: boundscheck=False, wraparound=False, language_level=3
"""Cython mirror of repro/core/kernels/_loops.py — build is OPTIONAL.

The semantics are pinned by the same cross-validation suites as every other
backend (tests/test_kernel_backends.py runs against whatever backends are
available).  Build with::

    pip install cython
    cythonize -i src/repro/core/kernels/_cysweeps.pyx

after which the ``cython`` backend reports itself available.  Keep this file
in lockstep with ``_loops.py`` — it is the same two loops.
"""

import numpy as np

cimport cython


def forward_sweep_loop(
    const long long[::1] labels,
    const long long[::1] arc_offsets,
    const long long[::1] tails,
    const long long[::1] heads,
    long long[:, ::1] state,
    Py_ssize_t first_group,
):
    cdef Py_ssize_t num_groups = labels.shape[0]
    cdef Py_ssize_t n = state.shape[0]
    cdef Py_ssize_t width = state.shape[1]
    cdef Py_ssize_t group, arc, column, vertex, tail, head
    cdef long long label
    cdef long long groups_scanned = 0
    cdef bint improved, saturated = False, row_ok
    for group in range(first_group, num_groups):
        groups_scanned += 1
        label = labels[group]
        improved = False
        for arc in range(arc_offsets[group], arc_offsets[group + 1]):
            tail = tails[arc]
            head = heads[arc]
            for column in range(width):
                if state[tail, column] < label and state[head, column] > label:
                    state[head, column] = label
                    improved = True
        if improved:
            saturated = True
            for vertex in range(n):
                row_ok = True
                for column in range(width):
                    if state[vertex, column] > label:
                        row_ok = False
                        break
                if not row_ok:
                    saturated = False
                    break
            if saturated:
                break
    return int(groups_scanned), bool(saturated)


def reverse_sweep_loop(
    const long long[::1] labels,
    const long long[::1] arc_offsets,
    const long long[::1] tails,
    const long long[::1] heads,
    long long[:, ::1] state,
    Py_ssize_t last_group,
):
    cdef Py_ssize_t n = state.shape[0]
    cdef Py_ssize_t width = state.shape[1]
    cdef Py_ssize_t group, arc, column, vertex, tail, head
    cdef long long label
    cdef long long groups_scanned = 0
    cdef bint improved, saturated = False, row_ok
    for group in range(last_group - 1, -1, -1):
        groups_scanned += 1
        label = labels[group]
        improved = False
        for arc in range(arc_offsets[group], arc_offsets[group + 1]):
            tail = tails[arc]
            head = heads[arc]
            for column in range(width):
                if state[head, column] > label and state[tail, column] < label:
                    state[tail, column] = label
                    improved = True
        if improved:
            saturated = True
            for vertex in range(n):
                row_ok = True
                for column in range(width):
                    if state[vertex, column] < label:
                        row_ok = False
                        break
                if not row_ok:
                    saturated = False
                    break
            if saturated:
                break
    return int(groups_scanned), bool(saturated)
