"""The Numba-jitted sweep backend.

Compiles the shared scalar loops of :mod:`repro.core.kernels._loops` with
``numba.njit(cache=True, nogil=True)`` the first time the backend is warmed
up.  ``cache=True`` persists the machine code next to the source, so the
multi-second first-call compilation is paid once per machine, not once per
process — spawned engine workers and fresh CLI runs load it from disk.

The backend stays registered even when numba is not installed; its
:meth:`availability` then reports why, and the ambient selection paths fall
back to the ``numpy`` reference (see :mod:`repro.core.kernels`).  A failure
*inside* compilation (unsupported numba/NumPy pairing, broken cache dir, …)
is caught by the registry's warm-up wrapper the same way.
"""

from __future__ import annotations

import numpy as np

from . import _loops

__all__ = ["NumbaBackend"]


def _tiny_csr_arrays() -> tuple[np.ndarray, ...]:
    """A 2-vertex, 2-arc instance: enough to drive both loops through a JIT."""
    labels = np.array([1, 2], dtype=np.int64)
    arc_offsets = np.array([0, 1, 2], dtype=np.int64)
    tails = np.array([0, 1], dtype=np.int64)
    heads = np.array([1, 0], dtype=np.int64)
    return labels, arc_offsets, tails, heads


class NumbaBackend:
    """JIT-compiled execution of the shared scalar sweep loops."""

    name = "numba"
    priority = 30

    def __init__(self) -> None:
        self._forward = None
        self._reverse = None

    def availability(self) -> str | None:
        if self._forward is not None:
            return None
        try:
            import numba  # noqa: F401
        except Exception as exc:  # pragma: no cover - depends on environment
            return f"numba is not importable: {exc!r}"
        return None

    def warm_up(self) -> None:
        """Compile (or load from numba's on-disk cache) both sweep loops."""
        if self._forward is not None:
            return
        import numba

        forward = numba.njit(cache=True, nogil=True)(_loops.forward_sweep_loop)
        reverse = numba.njit(cache=True, nogil=True)(_loops.reverse_sweep_loop)
        labels, arc_offsets, tails, heads = _tiny_csr_arrays()
        state = np.full((2, 1), 3, dtype=np.int64)
        state[0, 0] = 0
        forward(labels, arc_offsets, tails, heads, state, 0)
        state = np.zeros((2, 1), dtype=np.int64)
        state[0, 0] = 3
        reverse(labels, arc_offsets, tails, heads, state, 2)
        self._forward = forward
        self._reverse = reverse

    def forward_sweep(self, csr, state: np.ndarray, first_group: int) -> tuple[int, bool]:
        self.warm_up()
        groups, saturated = self._forward(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, first_group
        )
        return int(groups), bool(saturated)

    def reverse_sweep(self, csr, state: np.ndarray, last_group: int) -> tuple[int, bool]:
        self.warm_up()
        groups, saturated = self._reverse(
            csr.labels, csr.arc_offsets, csr.tails, csr.heads, state, last_group
        )
        return int(groups), bool(saturated)

    def __repr__(self) -> str:
        state = "compiled" if self._forward is not None else "not compiled"
        return f"NumbaBackend({state})"
