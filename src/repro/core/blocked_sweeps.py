"""Out-of-core blocked sweeps: all-pairs summaries for ``n ≫ 10⁴``.

:func:`repro.core.journeys.earliest_arrival_matrix` materializes the full
``(sources × vertices)`` arrival state, which caps instance size at what fits
in RAM — an ``n = 20 000`` dense matrix is already 3.2 GB, an ``n = 10⁶`` one
is 8 TB.  The paper's asymptotic quantities (temporal diameter, reachable
fraction, distance moments) are *reductions* of that matrix, and every one of
them decomposes over row blocks.  This module exploits that: the sweep is
tiled over blocks of ``tile_size`` sources (forward) or targets (reverse),
each tile runs through the ordinary :mod:`repro.core.kernels` backend
protocol — numpy, numba, cython and any third-party backend all work
unchanged — and the tile's contribution is folded into a mergeable
:class:`BlockedSummaryAccumulator` before the tile's rows are dropped.  Peak
memory is ``O(n · tile_size)`` instead of ``O(n²)``, while every reported
number stays **exact** (not sampled, not approximate) and bit-identical to
the dense path wherever the dense path can run at all — the ``n ≤ 512``
pins are the cross-validation oracle for this engine
(``tests/test_blocked_sweeps.py``).

Exactness and order invariance
------------------------------
Temporal distances are integers, so the accumulator keeps its moment state in
**exact integer arithmetic** (:class:`ExactDistanceMoments`: count, Σδ, Σδ²
as Python ints, plus min/max).  Merging tile partials is therefore associative
and commutative *exactly* — any permutation or partition of the tiles merges
to the same state, which the hypothesis suite pins
(``tests/test_property_blocked_sweeps.py``).  The derived ``mean`` / ``m2``
are the correctly-rounded floats of the exact rationals, which reproduces the
dense path's ``numpy.mean`` bit for bit whenever the distance sum is below
``2**53`` (always true at the pinned scales; beyond it the streamed value is
the *more* accurate of the two).  :meth:`ExactDistanceMoments.to_streaming`
exports the state as a PR-2 :class:`repro.engine.accumulators.StreamingMoments`
so blocked partials plug straight into the parallel engine's shard-merge
machinery.

Degenerate conventions match the dense path exactly (pinned by a regression
test): on a fully-unreachable instance the summary reports
``diameter = radius =`` :data:`~repro.types.UNREACHABLE`,
``average_distance = nan`` (never a 0/0 crash) and
``reachable_fraction = 0.0``; ``n <= 1`` reports ``(0, 0, 0.0, 1.0)``.

Spilling
--------
Callers that *do* need row access afterwards can pass ``spill_path``: each
tile's distance rows are written into a ``.npy``-format ``numpy.memmap``
before being dropped, so the full matrix lands on disk (reload it later with
``numpy.load(path, mmap_mode="r")``) while resident memory stays bounded.

Telemetry
---------
With a :mod:`repro.telemetry` recorder active, every tile emits the
``blocked.tiles`` / ``blocked.rows`` counters and a ``blocked.tile_ms``
timing; spilling adds ``blocked.spill_bytes``.  All are ordinary mergeable
counters, so ``--jobs N`` shard runs report the same totals as serial runs.

Composition with the engine: tiles run *within* a shard — the parallel
engine's ``--jobs N`` fans trials out across worker processes as before, and
each worker streams its own trials' tiles, so shard-level parallelism and
tile-level memory bounding compose.  The ambient tile size (the CLI's
``--tile-size`` flag) ships to spawned workers inside the shard task, like
the kernel backend.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterator, Mapping

import numpy as np

from ..analysis_api.handle import DistanceSummary
from ..exceptions import ConfigurationError
from ..telemetry import active as _telemetry_active
from ..types import NEVER, UNREACHABLE
from ..utils.validation import check_positive_int
from .journeys import earliest_arrival_matrix
from .reverse_journeys import latest_departure_matrix
from .temporal_graph import TemporalGraph

__all__ = [
    "DEFAULT_TILE_SIZE",
    "BlockedSweepResult",
    "BlockedSummaryAccumulator",
    "ExactDistanceMoments",
    "blocked_sweep_summary",
    "default_tile_size",
    "resolve_tile_size",
    "set_default_tile_size",
    "streamed_distance_summary",
    "streamed_reachable_fraction",
    "summary_of_distance_matrix",
    "tile_size_scope",
]

#: Tile width used when neither the call nor the process names one.  At
#: ``n = 10⁶`` a tile is ~2 GB of transient state; at the CI gate's
#: ``n = 20 000`` it is ~40 MB — both orders of magnitude below the dense
#: ``O(n²)`` matrix.
DEFAULT_TILE_SIZE = 256

#: Directions a blocked sweep can run in.
_DIRECTIONS = ("forward", "reverse")

#: The process-wide tile-size default installed by :func:`set_default_tile_size`
#: (the ``--tile-size`` CLI flag sets this); ``None`` = unset.
_default_tile_size: int | None = None


def _check_tile_size(size: int) -> int:
    """Validate a tile size, raising the CLI-friendly ConfigurationError."""
    try:
        return check_positive_int(size, "tile_size")
    except ConfigurationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(str(exc)) from None


def default_tile_size() -> int | None:
    """The process-wide tile-size default (``None`` when unset)."""
    return _default_tile_size


def set_default_tile_size(size: int | None) -> int | None:
    """Install ``size`` as the process-wide tile size; returns the previous one.

    ``None`` clears the default.  Besides fixing what ``tile_size=None``
    resolves to, an installed default switches the ``distance_summary``
    scenario metric onto the blocked path (see
    :mod:`repro.scenarios.metrics`), which is how the ``--tile-size`` CLI
    flag turns a whole run out-of-core.
    """
    global _default_tile_size
    if size is not None:
        size = _check_tile_size(size)
    previous = _default_tile_size
    _default_tile_size = size
    return previous


@contextmanager
def tile_size_scope(size: int | None) -> Iterator[None]:
    """Temporarily install ``size`` as the process-wide tile size.

    ``None`` is a no-op scope (keeps the current default), so engine workers
    can apply a shard task's snapshot unconditionally.
    """
    if size is None:
        yield
        return
    previous = set_default_tile_size(size)
    try:
        yield
    finally:
        set_default_tile_size(previous)


def resolve_tile_size(tile_size: int | None, n: int) -> int:
    """The tile width a blocked sweep should actually use.

    Resolution order: the explicit ``tile_size`` argument, then the process
    default installed by :func:`set_default_tile_size`, then
    :data:`DEFAULT_TILE_SIZE`.  The result is clamped to ``[1, max(n, 1)]`` —
    a tile wider than the instance is simply one tile, so ``tile_size >= n``
    degrades gracefully to a single dense-width sweep.
    """
    if tile_size is None:
        tile_size = _default_tile_size
    if tile_size is None:
        tile_size = DEFAULT_TILE_SIZE
    tile_size = _check_tile_size(tile_size)
    return max(1, min(tile_size, max(n, 1)))


class ExactDistanceMoments:
    """Streaming distance moments in exact integer arithmetic.

    The integer state (count, Σδ, Σδ² as arbitrary-precision Python ints,
    running min/max) makes accumulation and :meth:`merge` exactly associative
    and commutative: any partition of the distance stream into tiles, merged
    in any order, yields the same state bit for bit — the property the
    floating-point Chan merge of
    :class:`repro.engine.accumulators.StreamingMoments` cannot offer.  The
    float views (:attr:`mean`, :attr:`m2`, :attr:`variance`) are correctly
    rounded from the exact rationals.
    """

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.total_sq = 0
        self.minimum: int | None = None
        self.maximum: int | None = None

    def add_block(
        self,
        count: int,
        total: int,
        total_sq: int,
        minimum: int | None,
        maximum: int | None,
    ) -> None:
        """Fold one pre-reduced block of observations into the state."""
        if count == 0:
            return
        self.count += int(count)
        self.total += int(total)
        self.total_sq += int(total_sq)
        if minimum is not None:
            self.minimum = minimum if self.minimum is None else min(self.minimum, minimum)
        if maximum is not None:
            self.maximum = maximum if self.maximum is None else max(self.maximum, maximum)

    def add_values(self, values: np.ndarray) -> None:
        """Consume a 1-D integer array of distances.

        Per-row partial sums stay within ``int64`` for any realistic label
        scale (labels up to ~10⁶ at ``n`` up to 10⁶); the cross-row
        accumulation is arbitrary-precision.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        self.add_block(
            int(values.size),
            int(values.sum(dtype=object)),
            int((values * values).sum(dtype=object)),
            int(values.min()),
            int(values.max()),
        )

    def merge(self, other: "ExactDistanceMoments") -> None:
        """Fold another partial into this one (exact, order-invariant)."""
        self.add_block(
            other.count, other.total, other.total_sq, other.minimum, other.maximum
        )

    @property
    def mean(self) -> float:
        """Correctly-rounded mean distance (``nan`` while empty)."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    @property
    def m2(self) -> float:
        """Correctly-rounded sum of squared deviations from the mean."""
        if self.count == 0:
            return 0.0
        exact = Fraction(self.total_sq) - Fraction(self.total * self.total, self.count)
        return float(max(exact, Fraction(0)))

    @property
    def variance(self) -> float:
        """Unbiased (``ddof=1``) sample variance; 0.0 with fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        exact = Fraction(self.total_sq) - Fraction(self.total * self.total, self.count)
        return float(max(exact / (self.count - 1), Fraction(0)))

    def to_streaming(self):
        """Export as a PR-2 :class:`~repro.engine.accumulators.StreamingMoments`.

        The exported count/mean/m2/min/max are derived from the exact integer
        state, so the export itself is order-invariant; downstream the engine
        may merge it with ordinary floating-point partials.
        """
        from ..engine.accumulators import StreamingMoments

        moments = StreamingMoments()
        if self.count == 0:
            return moments
        moments.count = self.count
        moments.mean = self.mean
        moments.m2 = self.m2
        moments.minimum = float(self.minimum)
        moments.maximum = float(self.maximum)
        return moments

    def to_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (Python ints are arbitrary precision)."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ExactDistanceMoments":
        """Rebuild from a :meth:`to_state` snapshot."""
        moments = cls()
        moments.count = int(state["count"])
        moments.total = int(state["total"])
        moments.total_sq = int(state["total_sq"])
        moments.minimum = None if state["min"] is None else int(state["min"])
        moments.maximum = None if state["max"] is None else int(state["max"])
        return moments

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactDistanceMoments):
            return NotImplemented
        return self.to_state() == other.to_state()

    def __repr__(self) -> str:
        return (
            f"ExactDistanceMoments(count={self.count}, mean={self.mean:.6g}, "
            f"min={self.minimum}, max={self.maximum})"
        )


class BlockedSummaryAccumulator:
    """Mergeable reduction state of a blocked all-pairs distance sweep.

    One accumulator absorbs tiles of distance rows (:meth:`add_tile`) and/or
    other accumulators (:meth:`merge`); at the end :meth:`summary` yields the
    same :class:`~repro.analysis_api.DistanceSummary` the dense path computes
    from the full matrix.  All scalar state is exact-integer, and the one
    vector (:attr:`reach_counts`, the per-column in-reach partial feeding the
    centrality family's ``reach_counts``) merges by addition, so the whole
    object is order- and partition-invariant.
    """

    __slots__ = (
        "n",
        "rows",
        "reachable_pairs",
        "moments",
        "diameter",
        "radius",
        "reach_counts",
    )

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"vertex count must be non-negative, got {n}")
        self.n = int(n)
        #: Number of distance rows absorbed so far.
        self.rows = 0
        #: Ordered pairs ``s != t`` with a journey, among absorbed rows.
        self.reachable_pairs = 0
        #: Exact moments of the off-diagonal reachable distances.
        self.moments = ExactDistanceMoments()
        #: Running max/min of the per-row eccentricities (``None`` while empty).
        self.diameter: int | None = None
        self.radius: int | None = None
        #: Per-column count of rows that reach the column (diagonal excluded).
        self.reach_counts = np.zeros(self.n, dtype=np.int64)

    def add_tile(self, row_indices: np.ndarray, tile: np.ndarray) -> np.ndarray:
        """Fold one ``(k, n)`` block of distance rows into the state.

        ``row_indices[i]`` is the vertex whose distance row ``tile[i]`` is —
        needed to exclude the diagonal entry from the pair statistics, exactly
        as the dense path does.  Returns the per-row eccentricities (the row
        maxima, unreachable entries included), which the caller may keep; the
        tile itself can be dropped afterwards.
        """
        row_indices = np.asarray(row_indices, dtype=np.int64)
        tile = np.asarray(tile, dtype=np.int64)
        k = row_indices.size
        if tile.shape != (k, self.n):
            raise ConfigurationError(
                f"tile shape {tile.shape} does not match "
                f"({k} rows, n={self.n} vertices)"
            )
        if k == 0:
            return np.empty(0, dtype=np.int64)
        eccentricities = tile.max(axis=1)
        self.rows += k
        if self.n > 1:
            tile_diameter = int(eccentricities.max())
            tile_radius = int(eccentricities.min())
            self.diameter = (
                tile_diameter if self.diameter is None else max(self.diameter, tile_diameter)
            )
            self.radius = (
                tile_radius if self.radius is None else min(self.radius, tile_radius)
            )
        reachable = tile < UNREACHABLE
        reachable[np.arange(k), row_indices] = False
        tile_pairs = int(reachable.sum())
        self.reach_counts += reachable.sum(axis=0)
        if tile_pairs:
            self.reachable_pairs += tile_pairs
            masked = np.where(reachable, tile, 0)
            # Row-wise int64 partials, accumulated cross-row in Python ints so
            # huge tiles cannot overflow the exact moment state.
            row_sums = masked.sum(axis=1)
            row_sq_sums = (masked * masked).sum(axis=1)
            self.moments.add_block(
                tile_pairs,
                sum(int(x) for x in row_sums.tolist()),
                sum(int(x) for x in row_sq_sums.tolist()),
                int(np.where(reachable, tile, UNREACHABLE).min()),
                int(masked.max()),
            )
        return eccentricities

    def merge(self, other: "BlockedSummaryAccumulator") -> None:
        """Fold another accumulator into this one (exact, order-invariant)."""
        if other.n != self.n:
            raise ConfigurationError(
                f"cannot merge accumulators over n={self.n} and n={other.n}"
            )
        self.rows += other.rows
        self.reachable_pairs += other.reachable_pairs
        self.moments.merge(other.moments)
        for mine, theirs, pick in (
            ("diameter", other.diameter, max),
            ("radius", other.radius, min),
        ):
            current = getattr(self, mine)
            if theirs is not None:
                setattr(self, mine, theirs if current is None else pick(current, theirs))
        self.reach_counts += other.reach_counts

    def summary(self) -> DistanceSummary:
        """The dense-convention :class:`DistanceSummary` of the absorbed rows.

        Matches :attr:`repro.analysis_api.NetworkAnalysis.summary` bit for bit,
        including the degenerate conventions: ``n <= 1`` reports
        ``(0, 0, 0.0, 1.0)``; a fully-unreachable instance reports
        ``diameter = radius = UNREACHABLE``, ``average_distance = nan`` and
        ``reachable_fraction = 0.0``.
        """
        n = self.n
        if n <= 1:
            return DistanceSummary(
                diameter=0, radius=0, average_distance=0.0, reachable_fraction=1.0
            )
        if self.rows != n:
            raise ConfigurationError(
                f"summary needs all {n} rows absorbed, have {self.rows} "
                "(merge the remaining tile partials first)"
            )
        return DistanceSummary(
            diameter=int(self.diameter),
            radius=int(self.radius),
            average_distance=self.moments.mean,
            reachable_fraction=self.reachable_pairs / float(n * (n - 1)),
        )

    def to_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (the shard-transport representation)."""
        return {
            "n": self.n,
            "rows": self.rows,
            "reachable_pairs": self.reachable_pairs,
            "moments": self.moments.to_state(),
            "diameter": self.diameter,
            "radius": self.radius,
            "reach_counts": self.reach_counts.tolist(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "BlockedSummaryAccumulator":
        """Rebuild from a :meth:`to_state` snapshot."""
        accumulator = cls(int(state["n"]))
        accumulator.rows = int(state["rows"])
        accumulator.reachable_pairs = int(state["reachable_pairs"])
        accumulator.moments = ExactDistanceMoments.from_state(state["moments"])
        accumulator.diameter = None if state["diameter"] is None else int(state["diameter"])
        accumulator.radius = None if state["radius"] is None else int(state["radius"])
        accumulator.reach_counts = np.asarray(state["reach_counts"], dtype=np.int64)
        return accumulator

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockedSummaryAccumulator):
            return NotImplemented
        return (
            self.n == other.n
            and self.rows == other.rows
            and self.reachable_pairs == other.reachable_pairs
            and self.moments == other.moments
            and self.diameter == other.diameter
            and self.radius == other.radius
            and bool(np.array_equal(self.reach_counts, other.reach_counts))
        )

    def __repr__(self) -> str:
        return (
            f"BlockedSummaryAccumulator(n={self.n}, rows={self.rows}, "
            f"reachable_pairs={self.reachable_pairs})"
        )


@dataclass(frozen=True, slots=True)
class BlockedSweepResult:
    """Everything one blocked sweep produced.

    Attributes
    ----------
    direction:
        ``"forward"`` (earliest-arrival rows per source) or ``"reverse"``
        (deadline-referenced distance rows per target, the
        :meth:`~repro.analysis_api.NetworkAnalysis.distances_to` convention).
    tile_size / num_tiles:
        The resolved tile width and how many tiles ran.
    summary:
        The dense-convention :class:`DistanceSummary`.
    moments:
        Exact moments of the off-diagonal reachable distances.
    eccentricities:
        Per-row maximum distance (per source forward, per target reverse),
        assembled from the tile partials; length ``n``.
    reach_counts:
        Per-column count of rows with a journey to the column (the
        ``reach_counts`` centrality partial); length ``n``.
    spill:
        The ``numpy.memmap`` holding the full distance rows when
        ``spill_path`` was given, else ``None``.
    """

    direction: str
    tile_size: int
    num_tiles: int
    summary: DistanceSummary
    moments: ExactDistanceMoments
    eccentricities: np.ndarray
    reach_counts: np.ndarray
    spill: np.ndarray | None = None


def _distance_tile(
    network: TemporalGraph,
    rows: np.ndarray,
    direction: str,
    backend: str | None,
) -> np.ndarray:
    """One ``(len(rows), n)`` block of distance rows through the kernel backend."""
    if direction == "forward":
        return earliest_arrival_matrix(network, rows, backend=backend)
    departures = latest_departure_matrix(network, rows, backend=backend)
    horizon = np.int64(network.lifetime + 1)
    return np.where(departures == NEVER, UNREACHABLE, horizon - departures)


def blocked_sweep_summary(
    network: TemporalGraph,
    *,
    tile_size: int | None = None,
    direction: str = "forward",
    backend: str | None = None,
    spill_path: Any | None = None,
) -> BlockedSweepResult:
    """Run one blocked all-pairs sweep and stream it into a summary.

    Parameters
    ----------
    network:
        The temporal network.
    tile_size:
        Rows per tile; ``None`` uses the process default installed by
        :func:`set_default_tile_size` (the ``--tile-size`` CLI flag), else
        :data:`DEFAULT_TILE_SIZE`.  Values above ``n`` clamp to one tile.
    direction:
        ``"forward"`` streams earliest-arrival rows per source;
        ``"reverse"`` streams deadline-referenced distance rows per target
        (the :meth:`~repro.analysis_api.NetworkAnalysis.distances_to`
        convention), without ever running a forward sweep.
    backend:
        Kernel backend every tile's sweep runs on (``None`` = ambient
        selection, exactly as the dense entry points).
    spill_path:
        Optional path; when given, the distance rows are additionally written
        tile by tile into a ``.npy``-format ``numpy.memmap`` at this path
        (reload with ``numpy.load(path, mmap_mode="r")``).

    Returns
    -------
    BlockedSweepResult
        Summary, exact moments, per-row eccentricities, per-column reach
        counts and (optionally) the spill memmap.  ``result.summary`` is
        bit-identical to the dense path for every tile size and backend.
    """
    if direction not in _DIRECTIONS:
        raise ConfigurationError(
            f"direction must be one of {_DIRECTIONS}, got {direction!r}"
        )
    n = network.n
    width = resolve_tile_size(tile_size, n)
    accumulator = BlockedSummaryAccumulator(n)
    eccentricities = np.zeros(n, dtype=np.int64)
    spill: np.ndarray | None = None
    if spill_path is not None:
        spill = np.lib.format.open_memmap(
            spill_path, mode="w+", dtype=np.int64, shape=(n, n)
        )
    recs = _telemetry_active()
    num_tiles = 0
    for start in range(0, n, width):
        tile_start = time.perf_counter() if recs else 0.0
        rows = np.arange(start, min(start + width, n), dtype=np.int64)
        tile = _distance_tile(network, rows, direction, backend)
        tile_ecc = accumulator.add_tile(rows, tile)
        if n > 1:
            eccentricities[rows] = tile_ecc
        if spill is not None:
            spill[rows[0] : rows[-1] + 1] = tile
        num_tiles += 1
        if recs:
            duration_ms = (time.perf_counter() - tile_start) * 1e3
            for rec in recs:
                rec.counter("blocked.tiles")
                rec.counter("blocked.rows", rows.size)
                rec.observe_ms("blocked.tile_ms", duration_ms)
                if spill is not None:
                    rec.counter("blocked.spill_bytes", int(tile.nbytes))
    if spill is not None:
        spill.flush()
    return BlockedSweepResult(
        direction=direction,
        tile_size=width,
        num_tiles=num_tiles,
        summary=accumulator.summary(),
        moments=accumulator.moments,
        eccentricities=eccentricities,
        reach_counts=accumulator.reach_counts,
        spill=spill,
    )


def streamed_distance_summary(
    network: TemporalGraph,
    *,
    tile_size: int | None = None,
    direction: str = "forward",
    backend: str | None = None,
) -> DistanceSummary:
    """All-pairs distance statistics in ``O(n · tile_size)`` memory.

    The streamed twin of
    :func:`repro.core.distances.temporal_distance_summary`: same
    :class:`DistanceSummary`, bit for bit, without ever materializing the
    ``(n, n)`` matrix.  Prefer
    :meth:`repro.analysis_api.NetworkAnalysis.streamed_distance_summary` when
    holding a handle.
    """
    return blocked_sweep_summary(
        network, tile_size=tile_size, direction=direction, backend=backend
    ).summary


def streamed_reachable_fraction(
    network: TemporalGraph,
    *,
    tile_size: int | None = None,
    direction: str = "forward",
    backend: str | None = None,
) -> float:
    """Fraction of ordered pairs ``s != t`` with a journey, streamed.

    The blocked twin of :func:`repro.core.reachability.reachable_fraction`
    (bit-identical), in ``O(n · tile_size)`` memory.
    """
    return streamed_distance_summary(
        network, tile_size=tile_size, direction=direction, backend=backend
    ).reachable_fraction


def summary_of_distance_matrix(matrix: np.ndarray) -> DistanceSummary:
    """Dense reference reduction of a full square distance matrix.

    Exactly the reduction :attr:`repro.analysis_api.NetworkAnalysis.summary`
    applies to the cached arrival matrix, exposed as a free function so the
    parity suites can apply the *dense* code path to any distance matrix —
    in particular the reverse-direction matrix
    (:meth:`~repro.analysis_api.NetworkAnalysis.distances_to`), which has no
    dense summary accessor of its own.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"expected a square distance matrix, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    if n <= 1:
        return DistanceSummary(
            diameter=0, radius=0, average_distance=0.0, reachable_fraction=1.0
        )
    eccentricities = matrix.max(axis=1)
    reach_mask = matrix < UNREACHABLE
    np.fill_diagonal(reach_mask, False)
    reachable_pairs = int(reach_mask.sum())
    if reachable_pairs:
        average = float(matrix[reach_mask].mean())
    else:
        average = float("nan")
    return DistanceSummary(
        diameter=int(eccentricities.max()),
        radius=int(eccentricities.min()),
        average_distance=average,
        reachable_fraction=reachable_pairs / float(n * (n - 1)),
    )
