"""Sampling and connectivity of Erdős–Rényi random graphs ``G(n, p)``.

The sampler returns raw edge arrays (not :class:`StaticGraph` instances)
because the connectivity experiments only ever need a union-find pass over the
edges; skipping the graph object keeps the per-trial cost at a few NumPy calls
plus an ``O(m α(n))`` union-find sweep.
"""

from __future__ import annotations

import numpy as np

from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_positive_int, check_probability

__all__ = [
    "UnionFind",
    "sample_gnp_edges",
    "is_gnp_connected",
    "giant_component_fraction",
    "connectivity_probability",
]


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    __slots__ = ("_parent", "_size", "_components")

    def __init__(self, n: int) -> None:
        n = check_positive_int(n, "n")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self._components = n

    @property
    def num_components(self) -> int:
        """Current number of disjoint sets."""
        return self._components

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s component (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``; return True if they were distinct."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        if self._size[root_x] < self._size[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        self._size[root_x] += self._size[root_y]
        self._components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently in the same component."""
        return self.find(x) == self.find(y)

    def component_sizes(self) -> np.ndarray:
        """Sizes of all components, in no particular order."""
        roots = np.asarray([self.find(i) for i in range(self._parent.size)])
        _, counts = np.unique(roots, return_counts=True)
        return counts


def sample_gnp_edges(
    n: int, p: float, *, seed: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the edge set of ``G(n, p)`` as two parallel vertex arrays.

    Every unordered pair is kept independently with probability ``p``; the
    whole pair population is materialised (fine for the ``n ≤`` a few thousand
    used in the experiments) and filtered with a single vectorised draw.
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    if n == 1:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rng = normalize_rng(seed)
    idx_u, idx_v = np.triu_indices(n, k=1)
    keep = rng.random(idx_u.size) < p
    return idx_u[keep].astype(np.int64), idx_v[keep].astype(np.int64)


def is_gnp_connected(
    n: int, edges_u: np.ndarray, edges_v: np.ndarray
) -> bool:
    """Whether the graph given by the edge arrays is connected on ``n`` vertices."""
    n = check_positive_int(n, "n")
    if n == 1:
        return True
    if edges_u.size < n - 1:
        return False
    forest = UnionFind(n)
    for u, v in zip(edges_u.tolist(), edges_v.tolist()):
        forest.union(u, v)
        if forest.num_components == 1:
            return True
    return forest.num_components == 1


def giant_component_fraction(
    n: int, edges_u: np.ndarray, edges_v: np.ndarray
) -> float:
    """Fraction of vertices in the largest connected component."""
    n = check_positive_int(n, "n")
    forest = UnionFind(n)
    for u, v in zip(edges_u.tolist(), edges_v.tolist()):
        forest.union(u, v)
    return float(forest.component_sizes().max()) / n


def connectivity_probability(
    n: int, p: float, *, trials: int = 50, seed: SeedLike = None
) -> float:
    """Monte-Carlo estimate of ``P[G(n, p) is connected]``."""
    trials = check_positive_int(trials, "trials")
    rng = normalize_rng(seed)
    successes = 0
    for _ in range(trials):
        edges_u, edges_v = sample_gnp_edges(n, p, seed=rng)
        if is_gnp_connected(n, edges_u, edges_v):
            successes += 1
    return successes / trials
