"""Connectivity-threshold helpers for ``G(n, p)``.

The classical threshold sits at ``p* = log n / n``: below it the graph is
disconnected whp, above it connected whp.  The E7 experiment sweeps ``p``
around ``p*`` and reports the measured connectivity probability; the Theorem 5
proof uses exactly the sub-threshold regime.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..utils.seeding import SeedLike, spawn_rngs
from ..utils.validation import check_positive_int
from .gnp import connectivity_probability

__all__ = ["critical_probability", "connectivity_threshold_curve"]


def critical_probability(n: int) -> float:
    """The connectivity threshold ``log n / n`` (natural logarithm)."""
    n = check_positive_int(n, "n")
    if n == 1:
        return 0.0
    return math.log(n) / n


def connectivity_threshold_curve(
    n: int,
    *,
    multipliers: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    trials: int = 50,
    seed: SeedLike = None,
) -> list[dict[str, float]]:
    """Estimate ``P[connected]`` for ``p = multiplier · log n / n``.

    Returns one record per multiplier with keys ``multiplier``, ``p`` and
    ``probability``; the experiment layer renders these as the E7 table.
    """
    n = check_positive_int(n, "n")
    trials = check_positive_int(trials, "trials")
    p_star = critical_probability(n)
    rngs = spawn_rngs(seed, len(multipliers))
    curve = []
    for multiplier, rng in zip(multipliers, rngs):
        p = min(1.0, float(multiplier) * p_star)
        probability = connectivity_probability(n, p, trials=trials, seed=rng)
        curve.append(
            {"multiplier": float(multiplier), "p": p, "probability": probability}
        )
    return curve
