"""Erdős–Rényi ``G(n, p)`` substrate.

The lower bounds of the paper (the Remark after Theorem 4 and Theorem 5)
reduce to the classical fact that ``G(n, p)`` is disconnected whp when
``p < (1 − ε)·log n / n``.  This subpackage provides a fast sampler, a
union-find based connectivity check and the helpers used by the E7 experiment
to validate the threshold empirically.
"""

from .gnp import (
    UnionFind,
    connectivity_probability,
    giant_component_fraction,
    is_gnp_connected,
    sample_gnp_edges,
)
from .thresholds import connectivity_threshold_curve, critical_probability

__all__ = [
    "UnionFind",
    "sample_gnp_edges",
    "is_gnp_connected",
    "giant_component_fraction",
    "connectivity_probability",
    "connectivity_threshold_curve",
    "critical_probability",
]
