"""Layered profile report: render a recorder as a per-layer breakdown.

The instrumented layers use dotted-name prefixes as their namespace —
``kernel.*`` (CSR sweeps), ``analysis.*`` (the memoized handle), ``engine.*``
(shards / checkpoints), ``scenario.*`` (trials and metrics) — so a recorder
groups naturally into the stack the ROADMAP describes.  ``repro-experiments
profile <scenario>`` prints this report.
"""

from __future__ import annotations

from .recorder import TelemetryRecorder

__all__ = ["format_layer_report"]

#: Layer prefixes in stack order (top of the stack first).
LAYERS = (
    ("scenario", "Scenario pipeline"),
    ("engine", "Parallel engine"),
    ("analysis", "Analysis handle (artifact cache)"),
    ("kernel", "CSR sweep kernels"),
)


def _format_count(value: int) -> str:
    return f"{value:,}"


def _layer_lines(recorder: TelemetryRecorder, prefix: str) -> list[str]:
    lines: list[str] = []
    dotted = prefix + "."
    timing_names = sorted(name for name in recorder.timings if name.startswith(dotted))
    for name in timing_names:
        stats = recorder.timings[name]
        lines.append(
            f"  {name:<44} x{_format_count(stats.count):>8}   "
            f"total {stats.total:>10.2f} ms   mean {stats.mean:>8.3f} ms"
        )
    counter_names = sorted(
        name
        for name in recorder.counters
        if name.startswith(dotted) and name not in recorder.timings
    )
    for name in counter_names:
        lines.append(
            f"  {name:<44} x{_format_count(recorder.counters[name]):>8}"
        )
    return lines


def _cache_lines(recorder: TelemetryRecorder) -> list[str]:
    """The analysis layer's compute-vs-hit table, one row per artifact."""
    computes = {
        name.removeprefix("analysis.compute."): value
        for name, value in recorder.counters.items()
        if name.startswith("analysis.compute.")
    }
    hits = {
        name.removeprefix("analysis.cache_hit."): value
        for name, value in recorder.counters.items()
        if name.startswith("analysis.cache_hit.")
    }
    artifacts = sorted(set(computes) | set(hits))
    if not artifacts:
        return []
    lines = ["  artifact cache (computes / hits / hit rate):"]
    for artifact in artifacts:
        compute_count = computes.get(artifact, 0)
        hit_count = hits.get(artifact, 0)
        total = compute_count + hit_count
        rate = hit_count / total if total else 0.0
        timing = recorder.timings.get(f"analysis.compute_ms.{artifact}")
        compute_ms = f"   compute {timing.total:>9.2f} ms" if timing else ""
        lines.append(
            f"    {artifact:<24} {compute_count:>8} / {hit_count:>8} "
            f"/ {rate:>6.1%}{compute_ms}"
        )
    return lines


def format_layer_report(recorder: TelemetryRecorder, *, title: str = "") -> str:
    """Render the per-layer time/count/cache breakdown as plain text."""
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    empty = True
    for prefix, heading in LAYERS:
        lines = _layer_lines(recorder, prefix)
        if prefix == "analysis":
            lines = _cache_lines(recorder) + lines
        if not lines:
            continue
        empty = False
        out.append(f"{heading} [{prefix}.*]")
        out.extend(lines)
        out.append("")
    other = sorted(
        name
        for name in set(recorder.counters) | set(recorder.timings)
        if not any(name.startswith(prefix + ".") for prefix, _ in LAYERS)
    )
    if other:
        empty = False
        out.append("Other")
        for name in other:
            stats = recorder.timings.get(name)
            if stats is not None:
                out.append(
                    f"  {name:<44} x{stats.count:>8,}   "
                    f"total {stats.total:>10.2f} ms   mean {stats.mean:>8.3f} ms"
                )
            else:
                out.append(f"  {name:<44} x{recorder.counters[name]:>8,}")
        out.append("")
    if empty:
        out.append("(no telemetry recorded)")
    return "\n".join(out).rstrip() + "\n"
