"""Telemetry sinks: where a finished recording session is delivered.

A sink is any object with ``emit(recorder)``; :func:`repro.telemetry.session`
calls it once when the session closes (including on failure, so partial
telemetry survives a crash).  Three destinations ship with the repository:

* the in-memory :class:`~repro.telemetry.recorder.TelemetryRecorder` itself —
  no sink needed; tests and the ``profile`` command read it directly;
* :class:`JsonlSink` — one self-describing JSON record per line, the
  machine-readable trace format (:func:`read_jsonl` parses it back);
* :class:`StderrSummarySink` — a human-readable counters/timings summary on
  stderr, for ad-hoc CLI runs (``--telemetry summary``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Any, IO, Iterator, Protocol

from .recorder import SpanNode, TelemetryRecorder

__all__ = ["TelemetrySink", "JsonlSink", "StderrSummarySink", "read_jsonl"]


class TelemetrySink(Protocol):
    """Destination for a closed telemetry session."""

    def emit(self, recorder: TelemetryRecorder) -> None:
        """Deliver the session's recorder to the destination."""


def _iter_span_records(
    spans: list[SpanNode], path: tuple[str, ...]
) -> Iterator[dict[str, Any]]:
    for span in spans:
        span_path = path + (span.name,)
        yield {
            "kind": "span",
            "name": span.name,
            "path": "/".join(span_path),
            "depth": len(path),
            "duration_ms": span.duration_ms,
            "attrs": dict(span.attrs),
        }
        yield from _iter_span_records(span.children, span_path)


def recorder_to_records(recorder: TelemetryRecorder) -> list[dict[str, Any]]:
    """Flatten a recorder into self-describing JSON-able records.

    One ``span`` record per span-tree node (depth-first, with its slash-joined
    path), one ``counter`` record per counter, one ``timing`` record per
    timing statistic.  This is the JSONL line format.
    """
    records: list[dict[str, Any]] = []
    records.extend(_iter_span_records(recorder.spans, ()))
    for name in sorted(recorder.counters):
        records.append(
            {"kind": "counter", "name": name, "value": recorder.counters[name]}
        )
    for name in sorted(recorder.timings):
        records.append(
            {"kind": "timing", "name": name, **recorder.timings[name].to_state()}
        )
    return records


class JsonlSink:
    """Append the session's records to a JSONL file (one JSON object per line).

    The directory is created if missing.  Records are written on session
    close; concatenating the files of several runs stays parseable, which is
    what makes the format suitable for a perf-trajectory archive.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    def emit(self, recorder: TelemetryRecorder) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in recorder_to_records(recorder):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __repr__(self) -> str:
        return f"JsonlSink({os.fspath(self.path)!r})"


def read_jsonl(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Parse a :class:`JsonlSink` file back into its list of records."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class StderrSummarySink:
    """Print a compact counters/timings summary (stderr by default)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream

    def emit(self, recorder: TelemetryRecorder) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print("telemetry summary", file=stream)
        if not recorder.counters and not recorder.timings:
            print("  (no events recorded)", file=stream)
            return
        if recorder.counters:
            print("  counters:", file=stream)
            for name in sorted(recorder.counters):
                print(f"    {name} = {recorder.counters[name]}", file=stream)
        if recorder.timings:
            print("  timings:", file=stream)
            for name in sorted(recorder.timings):
                stats = recorder.timings[name]
                print(
                    f"    {name}: count={stats.count} total={stats.total:.3f} ms "
                    f"mean={stats.mean:.3f} ms max={stats.maximum:.3f} ms",
                    file=stream,
                )

    def __repr__(self) -> str:
        return "StderrSummarySink()"
