"""The telemetry recorder: spans, counters and timing statistics in memory.

Everything in this module is plain Python over plain data — no third-party
dependencies, no threads, no I/O — so the instrumentation layer can sit
*below* every other subsystem (the CSR kernels import it) without creating
import cycles or runtime baggage.

Three primitives cover the repository's observability needs:

* **counters** — monotonically accumulated integers keyed by dotted names
  (``kernel.forward.sweeps``, ``analysis.cache_hit.arrival_matrix``).
* **timing statistics** (:class:`TimingStats`) — count / total / mean /
  variance / min / max of millisecond observations, maintained with Welford's
  online update and merged exactly with the Chan et al. parallel rule — the
  same machinery the engine's streaming accumulators use, so worker-side
  recorders fold into run totals deterministically and associatively.
* **spans** (:class:`SpanNode`) — nested wall-clock regions.  Each closed
  span appends a node to the recorder's per-process span tree *and* feeds a
  timing statistic under the span's name, which is what survives cross-process
  merging (trees are per-process artifacts; statistics are mergeable).

Activation model
----------------
A module-level stack of recorders (usually empty, occasionally one deep)
decides whether instrumentation is live.  The disabled path — the default —
costs one module attribute read and one truthiness check at each
instrumentation site, which is why the instrumented kernels benchmark
indistinguishably from the uninstrumented ones
(``benchmarks/bench_telemetry.py`` gates this).  Instrumented code uses one
of two idioms:

* hot kernels fetch the stack once per call::

      recs = telemetry.active()
      ...
      if recs:
          for rec in recs:
              rec.counter("kernel.forward.sweeps")

* structural code uses the module-level helpers (:func:`span`,
  :func:`counter`, :func:`observe_ms`), which fan out to every active
  recorder and do nothing when the stack is empty.

The stack (rather than a single slot) lets a scoped probe — e.g.
:func:`repro.analysis_api.compute_events` — observe a region of code while an
outer session keeps recording: events are delivered to *all* active
recorders.  :func:`isolated` swaps the whole stack for exactly one recorder;
the engine's shard workers use it so every shard's events are captured in a
private recorder whose state is shipped back and merged in shard-index order
regardless of executor (which is what makes telemetry totals bit-identical in
counts across worker counts).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "SpanNode",
    "TimingStats",
    "TelemetryRecorder",
    "active",
    "attach",
    "counter",
    "isolated",
    "observe_ms",
    "session",
    "span",
]


class TimingStats:
    """Mergeable statistics over a stream of millisecond observations.

    ``add`` consumes one observation in O(1) (Welford); ``merge`` combines two
    partials exactly (Chan et al.), so folding worker-side statistics in a
    fixed order reproduces a deterministic result independent of where each
    observation was recorded.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value_ms: float) -> None:
        """Consume one observation (milliseconds)."""
        value_ms = float(value_ms)
        self.count += 1
        delta = value_ms - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value_ms - self.mean)
        if value_ms < self.minimum:
            self.minimum = value_ms
        if value_ms > self.maximum:
            self.maximum = value_ms

    def merge(self, other: "TimingStats") -> None:
        """Fold another partial into this one (exact parallel Welford update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def total(self) -> float:
        """Total observed milliseconds (``count * mean``)."""
        return self.count * self.mean

    @property
    def variance(self) -> float:
        """Population variance of the observations (0.0 for fewer than two)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    def to_state(self) -> dict[str, float]:
        """JSON-able snapshot; :meth:`from_state` round-trips it."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "TimingStats":
        """Rebuild from a :meth:`to_state` dictionary."""
        stats = cls()
        stats.count = int(state["count"])
        stats.mean = float(state["mean"])
        stats.m2 = float(state["m2"])
        if stats.count:
            stats.minimum = float(state["min"])
            stats.maximum = float(state["max"])
        return stats

    def __repr__(self) -> str:
        return (
            f"TimingStats(count={self.count}, total={self.total:.3f} ms, "
            f"mean={self.mean:.3f} ms)"
        )


@dataclass
class SpanNode:
    """One closed wall-clock region of the per-process span tree."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    duration_ms: float = 0.0
    children: list["SpanNode"] = field(default_factory=list)

    def to_record(self) -> dict[str, Any]:
        """JSON-able representation (children nested)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_ms": self.duration_ms,
            "children": [child.to_record() for child in self.children],
        }


class TelemetryRecorder:
    """In-memory telemetry destination: counters, timings and a span tree.

    The recorder is the universal buffer — tests read it directly, the CLI
    report formats it, and the file/stderr sinks serialise it.  Counters and
    timing statistics are *mergeable* (:meth:`merge_state`); the span tree is
    a per-process artifact and is not merged (each closed span also feeds the
    timing statistic of its name, which is what crosses process boundaries).
    """

    __slots__ = ("counters", "timings", "spans", "_open")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timings: dict[str, TimingStats] = {}
        self.spans: list[SpanNode] = []
        self._open: list[SpanNode] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def observe_ms(self, name: str, value_ms: float) -> None:
        """Feed one millisecond observation into the timing statistic ``name``."""
        stats = self.timings.get(name)
        if stats is None:
            stats = self.timings[name] = TimingStats()
        stats.add(value_ms)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanNode]:
        """Time a region as a child of the recorder's innermost open span."""
        node = SpanNode(name=name, attrs=dict(attrs))
        self._open.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.duration_ms = (time.perf_counter() - start) * 1e3
            self._open.pop()
            if self._open:
                self._open[-1].children.append(node)
            else:
                self.spans.append(node)
            self.observe_ms(name, node.duration_ms)

    # internal hooks used by the module-level span() fan-out, which times the
    # region once and reports the same duration to every active recorder
    def _enter_span(self, name: str, attrs: dict[str, Any]) -> SpanNode:
        node = SpanNode(name=name, attrs=attrs)
        self._open.append(node)
        return node

    def _exit_span(self, node: SpanNode, duration_ms: float) -> None:
        node.duration_ms = duration_ms
        self._open.pop()
        if self._open:
            self._open[-1].children.append(node)
        else:
            self.spans.append(node)
        self.observe_ms(node.name, duration_ms)

    # ------------------------------------------------------------------ #
    # merge / state round-trip
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, Any]:
        """JSON-able mergeable state: counters + timing statistics.

        The span tree is deliberately absent — it describes *this* process's
        call structure; its durations are already present in ``timings``.
        """
        return {
            "counters": dict(self.counters),
            "timings": {name: stats.to_state() for name, stats in self.timings.items()},
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_state` snapshot (e.g. a worker's) into this recorder."""
        for name, value in state.get("counters", {}).items():
            self.counter(name, int(value))
        for name, timing_state in state.get("timings", {}).items():
            stats = self.timings.get(name)
            incoming = TimingStats.from_state(timing_state)
            if stats is None:
                self.timings[name] = incoming
            else:
                stats.merge(incoming)

    def merge(self, other: "TelemetryRecorder") -> None:
        """Fold another recorder's counters and timings into this one."""
        self.merge_state(other.to_state())

    def __repr__(self) -> str:
        return (
            f"TelemetryRecorder(counters={len(self.counters)}, "
            f"timings={len(self.timings)}, spans={len(self.spans)})"
        )


# --------------------------------------------------------------------- #
# the active-recorder stack
# --------------------------------------------------------------------- #
_STACK: tuple[TelemetryRecorder, ...] = ()


def active() -> tuple[TelemetryRecorder, ...]:
    """The currently active recorders (empty tuple = telemetry disabled).

    Hot code fetches this once per call and skips all instrumentation when it
    is empty — that single check is the entire disabled-path overhead.
    """
    return _STACK


@contextmanager
def attach(recorder: TelemetryRecorder) -> Iterator[TelemetryRecorder]:
    """Push an existing recorder onto the active stack for the ``with`` body.

    Events inside the body are delivered to ``recorder`` *and* to any outer
    recorders — the scoped-probe composition rule.
    """
    global _STACK
    _STACK = _STACK + (recorder,)
    try:
        yield recorder
    finally:
        _STACK = tuple(r for r in _STACK if r is not recorder)


@contextmanager
def session(*sinks: Any) -> Iterator[TelemetryRecorder]:
    """Record everything in the ``with`` body into a fresh recorder.

    On exit each ``sink`` (an object with ``emit(recorder)``, e.g.
    :class:`~repro.telemetry.sinks.JsonlSink` or
    :class:`~repro.telemetry.sinks.StderrSummarySink`) receives the final
    recorder — even when the body raises, so partial telemetry of a failed
    run is still flushed.
    """
    recorder = TelemetryRecorder()
    with attach(recorder):
        try:
            yield recorder
        finally:
            for sink in sinks:
                sink.emit(recorder)


@contextmanager
def isolated(recorder: TelemetryRecorder) -> Iterator[TelemetryRecorder]:
    """Make ``recorder`` the *only* active recorder for the ``with`` body.

    Used by shard workers: the shard's events must be captured exactly once —
    in the worker recorder whose state is shipped back and merged by the
    driver — never directly into an ambient session recorder, or serial and
    multiprocess runs would double-count.
    """
    global _STACK
    previous = _STACK
    _STACK = (recorder,)
    try:
        yield recorder
    finally:
        _STACK = previous


def counter(name: str, value: int = 1) -> None:
    """Add to a counter on every active recorder (no-op when disabled)."""
    for recorder in _STACK:
        recorder.counter(name, value)


def observe_ms(name: str, value_ms: float) -> None:
    """Feed a timing observation to every active recorder (no-op when disabled)."""
    for recorder in _STACK:
        recorder.observe_ms(name, value_ms)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Time a region on every active recorder; a cheap no-op when disabled.

    The region is timed once; every active recorder receives a span node (in
    its own tree position) and a timing observation with the same duration.
    """
    recs = _STACK
    if not recs:
        yield None
        return
    nodes = [rec._enter_span(name, dict(attrs)) for rec in recs]
    start = time.perf_counter()
    try:
        yield None
    finally:
        duration_ms = (time.perf_counter() - start) * 1e3
        for rec, node in zip(recs, nodes):
            rec._exit_span(node, duration_ms)
