"""repro.telemetry — zero-dependency instrumentation for every layer.

The subsystem answers the questions the stack could not before: how many CSR
sweeps did a scenario run, what fraction of analysis-artifact requests were
cache hits, where did the wall-clock go per shard.  It is **off by default**:
with no recorder active, every instrumentation site reduces to one module
attribute read and a truthiness check (gated by
``benchmarks/bench_telemetry.py``), so the kernels pay nothing for being
observable.

Quickstart
----------
>>> from repro import NetworkAnalysis, complete_graph, normalized_urtn, telemetry
>>> network = normalized_urtn(complete_graph(16, directed=True), seed=0)
>>> with telemetry.session() as rec:
...     _ = NetworkAnalysis(network).summary
>>> rec.counters["analysis.compute.arrival_matrix"]
1
>>> rec.counters["kernel.forward.sweeps"]
1

Surface
-------
:func:`session` opens a recording scope (optionally flushing to sinks on
close); :func:`span` / :func:`counter` / :func:`observe_ms` are the
module-level emit helpers; :func:`active` is the hot-path enablement check;
:func:`attach` composes a scoped probe with an outer session and
:func:`isolated` captures a region into exactly one recorder (the shard
workers' transport mode).  See ``docs/observability.md`` for the full tour,
the naming scheme and the CLI flags (``--telemetry``, ``repro-experiments
profile``).
"""

from .recorder import (
    SpanNode,
    TelemetryRecorder,
    TimingStats,
    active,
    attach,
    counter,
    isolated,
    observe_ms,
    session,
    span,
)
from .report import format_layer_report
from .sinks import JsonlSink, StderrSummarySink, TelemetrySink, read_jsonl

__all__ = [
    "SpanNode",
    "TimingStats",
    "TelemetryRecorder",
    "TelemetrySink",
    "JsonlSink",
    "StderrSummarySink",
    "active",
    "attach",
    "counter",
    "format_layer_report",
    "isolated",
    "observe_ms",
    "read_jsonl",
    "session",
    "span",
]
