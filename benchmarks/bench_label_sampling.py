"""Label-sampling bench — the direct-to-CSR fast path vs. the dict-build path.

Random label models are the per-trial hot loop of every Monte-Carlo scenario:
each trial samples a fresh ``(m, r)`` label matrix and needs the CSR time-arc
layout the batched kernels consume.  The historical path routed every trial
through the per-edge Python loops of the ``TemporalGraph`` mapping
constructor; :meth:`TemporalGraph.from_label_matrix` replaces them with
vectorised array operations.

Two layers:

* pytest-benchmark timings of both construction paths (draws → network →
  CSR) on the E1 clique workload;
* ``test_label_sampling_speedup_at_least_3x`` — the acceptance gate: on the
  E1 clique workload (directed ``K_128``, one uniform label per arc) the
  fast path must be ≥ 3× faster than the dict-build path at producing an
  identical network + CSR (see ``docs/performance.md`` for recorded numbers).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph

#: The E1 workload: the directed hostile clique with one label per arc.
N = 128
LABELS_PER_EDGE = 1
ROUNDS = 8
REQUIRED_SPEEDUP = 3.0


def _draws(graph, r, seed=314):
    rng = np.random.default_rng(seed)
    return rng.integers(1, graph.n + 1, size=(graph.m, r))


def _dict_build(graph, matrix, lifetime):
    """The historical path: per-edge tuples through the mapping constructor."""
    labels = [tuple(sorted(set(row))) for row in matrix.tolist()]
    network = TemporalGraph(graph, labels, lifetime=lifetime)
    network.timearc_csr
    return network


def _fast_build(graph, matrix, lifetime):
    """The vectorised direct-to-CSR path."""
    network = TemporalGraph.from_label_matrix(graph, matrix, lifetime=lifetime)
    network.timearc_csr
    return network


def test_bench_label_sampling_dict_path(benchmark):
    graph = complete_graph(N, directed=True)
    matrix = _draws(graph, LABELS_PER_EDGE)
    network = benchmark.pedantic(
        lambda: _dict_build(graph, matrix, graph.n), rounds=1, iterations=1
    )
    assert network.total_labels == graph.m


def test_bench_label_sampling_fast_path(benchmark):
    graph = complete_graph(N, directed=True)
    matrix = _draws(graph, LABELS_PER_EDGE)
    network = benchmark.pedantic(
        lambda: _fast_build(graph, matrix, graph.n), rounds=1, iterations=1
    )
    assert network.total_labels == graph.m


def test_label_sampling_speedup_at_least_3x(perf_record):
    """Acceptance gate: direct-to-CSR must beat the dict build ≥ 3× on E1."""
    graph = complete_graph(N, directed=True)
    matrix = _draws(graph, LABELS_PER_EDGE)

    # Warm both paths (first-touch allocations, import side effects).
    reference = _dict_build(graph, matrix, graph.n)
    candidate = _fast_build(graph, matrix, graph.n)
    assert candidate == reference, "fast path must build an identical network"

    start = time.perf_counter()
    for _ in range(ROUNDS):
        _dict_build(graph, matrix, graph.n)
    dict_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(ROUNDS):
        _fast_build(graph, matrix, graph.n)
    fast_seconds = time.perf_counter() - start

    speedup = dict_seconds / fast_seconds
    perf_record(
        name="label_sampling_speedup",
        n=N,
        labels_per_edge=LABELS_PER_EDGE,
        rounds=ROUNDS,
        dict_seconds=dict_seconds,
        fast_seconds=fast_seconds,
        speedup=speedup,
        required=REQUIRED_SPEEDUP,
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"direct-to-CSR path only {speedup:.2f}x faster than the dict build "
        f"on the E1 clique workload (n={N}, r={LABELS_PER_EDGE}); "
        f"required ≥ {REQUIRED_SPEEDUP}x"
    )
