"""E3 / F1 bench — the Expansion Process algorithm (Theorem 3, Figure 1)."""

from __future__ import annotations

import pytest

from repro.core.expansion import ExpansionParameters, expansion_process
from repro.core.labeling import normalized_urtn
from repro.experiments import exp_expansion
from repro.graphs.generators import complete_graph


def test_bench_experiment_e3(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_expansion.run("quick", seed=103), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("n", [64, 128])
def test_bench_expansion_process(benchmark, n):
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=8)
    params = ExpansionParameters.suggest(n)
    result = benchmark(lambda: expansion_process(network, 0, 1, params))
    assert len(result.forward_layer_sizes) == params.d + 1


def test_bench_expansion_instance_generation(benchmark):
    clique = complete_graph(128, directed=True)
    network = benchmark(lambda: normalized_urtn(clique, seed=9))
    assert network.total_labels == clique.m
