"""E2 bench — temporal diameter vs. lifetime (Theorem 5)."""

from __future__ import annotations

import pytest

from repro.core.distances import temporal_diameter
from repro.core.labeling import uniform_random_labels
from repro.core.lifetime import prefix_connectivity_time
from repro.experiments import exp_lifetime
from repro.graphs.generators import complete_graph


def test_bench_experiment_e2(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_lifetime.run("quick", seed=102), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("multiplier", [1, 8])
def test_bench_long_lifetime_diameter(benchmark, multiplier):
    n = 64
    clique = complete_graph(n, directed=True)
    network = uniform_random_labels(clique, lifetime=multiplier * n, seed=3)
    result = benchmark(lambda: temporal_diameter(network))
    assert result <= multiplier * n


def test_bench_prefix_connectivity_certificate(benchmark):
    n = 96
    clique = complete_graph(n, directed=True)
    network = uniform_random_labels(clique, lifetime=8 * n, seed=4)
    value = benchmark(lambda: prefix_connectivity_time(network))
    assert value >= 1
