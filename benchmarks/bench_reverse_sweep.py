"""Reverse sweep bench — single-target reverse query vs all-pairs fallback.

Before the reverse engine existed, the only way to answer a target-side
question ("who can reach vertex ``t``, and departing when?") was the forward
all-pairs sweep: compute the full ``(n, n)`` arrival matrix and read one
column.  The reverse engine answers it in **one** single-target sweep over
the target-major CSR layout.  Two layers:

* pytest-benchmark timings of both paths on the n = 256 normalized directed
  clique;
* ``test_reverse_query_speedup_at_least_5x`` — the acceptance gate: the
  single-target reverse query must deliver ≥ 5× wall-clock over the
  all-pairs forward fallback, with identical answers.  On a single-core
  runner the gate skips, like the other benchmark gates — timing noise on
  shared sub-2-core runners swamps the effect (``docs/performance.md``
  records real numbers).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import (
    NEVER,
    UNREACHABLE,
    NetworkAnalysis,
    complete_graph,
    earliest_arrival_matrix,
    normalized_urtn,
)

N = 256
INSTANCES = 8
TARGET = 0
SEED = 2032

_CLIQUE = complete_graph(N, directed=True)


def _instances() -> list:
    networks = [normalized_urtn(_CLIQUE, seed=SEED + i) for i in range(INSTANCES)]
    for network in networks:
        # Warm both CSR layouts so the gate times sweeps, not sorting.
        network.timearc_csr
        network.reverse_timearc_csr
    return networks


def _reverse_query(network) -> np.ndarray:
    """The engine under test: one single-target reverse sweep."""
    return NetworkAnalysis(network).distances_to([TARGET])[0]


def _forward_fallback(network) -> np.ndarray:
    """The historical path: full forward all-pairs sweep, read one column.

    The column holds arrival times; converted to the reverse temporal
    distance convention (``lifetime + 1 − departure``) the two paths must
    agree exactly on reachability, and the reverse path also reports *when*
    to leave — strictly more information for strictly less work.
    """
    column = earliest_arrival_matrix(network)[:, TARGET]
    return column < UNREACHABLE


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _wall_clock(runner, networks) -> tuple[list, float]:
    start = time.perf_counter()
    results = [runner(network) for network in networks]
    return results, time.perf_counter() - start


def test_bench_single_target_reverse_query(benchmark):
    networks = _instances()
    results = benchmark.pedantic(
        lambda: [_reverse_query(network) for network in networks],
        rounds=1,
        iterations=1,
    )
    assert len(results) == INSTANCES


def test_bench_all_pairs_forward_fallback(benchmark):
    networks = _instances()
    results = benchmark.pedantic(
        lambda: [_forward_fallback(network) for network in networks],
        rounds=1,
        iterations=1,
    )
    assert len(results) == INSTANCES


def test_reverse_query_speedup_at_least_5x(perf_record):
    """Acceptance gate: one reverse sweep must beat the all-pairs fallback."""
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"only {cpus} usable core(s); timing noise swamps the gate")
    networks = _instances()

    def best_of(runner, attempts: int):
        best = float("inf")
        results = None
        for _ in range(attempts):
            results, seconds = _wall_clock(runner, networks)
            best = min(best, seconds)
        return results, best

    reverse, reverse_seconds = best_of(_reverse_query, attempts=3)
    forward, forward_seconds = best_of(_forward_fallback, attempts=3)

    for reverse_distances, forward_reachable in zip(reverse, forward):
        np.testing.assert_array_equal(
            reverse_distances < UNREACHABLE,
            forward_reachable,
            err_msg="reverse and forward paths disagree on reachability",
        )
    speedup = forward_seconds / reverse_seconds
    perf_record(
        name="reverse_sweep_speedup",
        reverse_seconds=reverse_seconds,
        forward_seconds=forward_seconds,
        speedup=speedup,
        required=5.0,
    )
    assert speedup >= 5.0, (
        f"single-target reverse query only {speedup:.2f}x faster than the "
        f"all-pairs forward fallback ({reverse_seconds * 1e3:.0f} ms vs "
        f"{forward_seconds * 1e3:.0f} ms, required 5.0x)"
    )
