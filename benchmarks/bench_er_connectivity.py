"""E7 bench — Erdős–Rényi connectivity threshold substrate."""

from __future__ import annotations

import pytest

from repro.erdosrenyi.gnp import is_gnp_connected, sample_gnp_edges
from repro.erdosrenyi.thresholds import critical_probability
from repro.experiments import exp_er_connectivity


def test_bench_experiment_e7(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_er_connectivity.run("quick", seed=107), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("n", [512, 2048])
def test_bench_gnp_sample_and_connectivity(benchmark, n):
    p = 1.5 * critical_probability(n)

    def sample_and_check() -> bool:
        edges_u, edges_v = sample_gnp_edges(n, p, seed=15)
        return is_gnp_connected(n, edges_u, edges_v)

    benchmark(sample_and_check)
