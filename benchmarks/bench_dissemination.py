"""E4 bench — flooding dissemination and the phone-call baseline (§3.5, §1.1)."""

from __future__ import annotations

import pytest

from repro.core.dissemination import flood_broadcast, push_phone_call_broadcast
from repro.core.labeling import normalized_urtn
from repro.experiments import exp_dissemination
from repro.graphs.generators import complete_graph


def test_bench_experiment_e4(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_dissemination.run("quick", seed=104), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("n", [128, 256])
def test_bench_flood_broadcast(benchmark, n):
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=10)
    result = benchmark(lambda: flood_broadcast(network, 0))
    assert result.completed


@pytest.mark.parametrize("n", [1024, 4096])
def test_bench_phone_call_push(benchmark, n):
    result = benchmark(lambda: push_phone_call_broadcast(n, seed=11))
    assert result.completed
