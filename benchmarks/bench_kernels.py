"""Ablation benches for the design choices called out in DESIGN.md §5.

* vectorised label-sweep journey kernel vs. the scalar reference,
* batched all-pairs distance matrix (CSR engine) vs. the row-by-row variant,
* the one-off cost of building the cached CSR time-arc layout,
* binary-search threshold location vs. the linear sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import temporal_distance_matrix, temporal_distance_matrix_reference
from repro.core.guarantees import minimal_labels_for_reachability, minimal_labels_linear_sweep
from repro.core.journeys import (
    earliest_arrival_matrix,
    earliest_arrival_times,
    earliest_arrival_times_reference,
)
from repro.core.labeling import normalized_urtn
from repro.core.timearc_csr import build_timearc_csr
from repro.graphs.generators import complete_graph, star_graph


@pytest.fixture(scope="module")
def clique_instance():
    return normalized_urtn(complete_graph(128, directed=True), seed=21)


class TestSingleSourceKernelAblation:
    def test_bench_vectorised_single_source(self, benchmark, clique_instance):
        arrival = benchmark(lambda: earliest_arrival_times(clique_instance, 0))
        assert arrival[0] == 0

    def test_bench_reference_single_source(self, benchmark, clique_instance):
        arrival = benchmark(lambda: earliest_arrival_times_reference(clique_instance, 0))
        assert arrival[0] == 0

    def test_kernels_agree(self, clique_instance):
        fast = earliest_arrival_times(clique_instance, 0)
        slow = earliest_arrival_times_reference(clique_instance, 0)
        assert np.array_equal(fast, slow)


class TestAllPairsKernelAblation:
    def test_bench_batched_distance_matrix(self, benchmark, clique_instance):
        matrix = benchmark(lambda: temporal_distance_matrix(clique_instance))
        assert matrix.shape[0] == clique_instance.n

    def test_bench_row_by_row_distance_matrix(self, benchmark, clique_instance):
        matrix = benchmark.pedantic(
            lambda: temporal_distance_matrix_reference(clique_instance),
            rounds=1,
            iterations=1,
        )
        assert matrix.shape[0] == clique_instance.n

    def test_bench_source_subset_rows(self, benchmark, clique_instance):
        sources = list(range(0, clique_instance.n, 4))
        matrix = benchmark(lambda: earliest_arrival_matrix(clique_instance, sources))
        assert matrix.shape == (len(sources), clique_instance.n)

    def test_batched_matches_row_by_row(self, clique_instance):
        fast = temporal_distance_matrix(clique_instance)
        slow = temporal_distance_matrix_reference(clique_instance)
        assert np.array_equal(fast, slow)


class TestCSRBuildCost:
    def test_bench_build_timearc_csr(self, benchmark, clique_instance):
        csr = benchmark(lambda: build_timearc_csr(clique_instance))
        assert csr.num_arcs == clique_instance.num_time_arcs

    def test_cached_csr_is_reused(self, clique_instance):
        assert clique_instance.timearc_csr is clique_instance.timearc_csr


class TestThresholdSearchAblation:
    def test_bench_binary_search_threshold(self, benchmark):
        star = star_graph(48)
        value = benchmark.pedantic(
            lambda: minimal_labels_for_reachability(
                star, target_probability=0.8, trials=15, seed=22
            ),
            rounds=1,
            iterations=1,
        )
        assert value >= 2

    def test_bench_linear_sweep_threshold(self, benchmark):
        star = star_graph(48)
        value = benchmark.pedantic(
            lambda: minimal_labels_linear_sweep(
                star, target_probability=0.8, trials=15, r_max=32, seed=23
            ),
            rounds=1,
            iterations=1,
        )
        assert value >= 2
