"""Memory-budget gates for the out-of-core blocked sweep engine.

The acceptance gate of the blocked-sweeps ISSUE: an ``n = 20 000`` blocked
temporal-diameter computation must complete with peak traced memory under a
RAM budget that the dense path *provably* cannot meet — the dense arrival
matrix alone is ``n² × 8`` bytes = 3.2 GB, several times the budget, before
counting the sweep's working state.  ``tracemalloc`` traces numpy's
allocations (they go through the traced ``PyMem`` domain), so the measured
peak covers the tile states, the accumulator and every transient copy.

A second test keeps the bench honest at oracle scale: at ``n = 512`` the
blocked path must agree with the dense path bit for bit while allocating a
small fraction of its peak.

Both tests persist perf records (``benchmarks/results/blocked_*.json``) with
the exact numbers the assertions were judged on; the CI memory-budget job
uploads them.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro import NetworkAnalysis, grid_graph, uniform_random_labels
from repro.core.blocked_sweeps import blocked_sweep_summary
from repro.graphs.generators import complete_graph
from repro.core.labeling import normalized_urtn

#: The gate instance: a 100×200 grid (n = 20 000, sparse) with one uniform
#: label per edge.  Sparse on purpose — the gate is about *memory*, and a
#: sparse instance keeps the 40-tile sweep inside a CI-friendly runtime.
GATE_ROWS, GATE_COLS = 100, 200
GATE_LIFETIME = 64
#: Peak-RSS budget for the blocked run.  The dense matrix alone needs
#: ``20 000² × 8 = 3.2 GB`` — over 5× this budget — so a dense run cannot fit
#: even before its sweep state; the blocked run must stay under it with room
#: to spare.
MEMORY_BUDGET_BYTES = 512 * 1024 * 1024
#: Tile width for the gate run (the engine default).
GATE_TILE = 256


def _gate_instance():
    graph = grid_graph(GATE_ROWS, GATE_COLS)
    return uniform_random_labels(
        graph, lifetime=GATE_LIFETIME, labels_per_edge=1, seed=42
    )


def test_blocked_diameter_at_n20k_under_memory_budget(perf_record):
    """The CI memory-budget gate (n = 20 000, dense provably over budget)."""
    network = _gate_instance()
    n = network.n
    assert n == GATE_ROWS * GATE_COLS
    dense_matrix_bytes = n * n * 8
    # The dense path is disqualified arithmetically, not by running it: its
    # arrival matrix alone exceeds the budget several times over.
    assert dense_matrix_bytes > 5 * MEMORY_BUDGET_BYTES

    tracemalloc.start()
    start = time.perf_counter()
    result = blocked_sweep_summary(network, tile_size=GATE_TILE)
    elapsed = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    perf_record(
        name="blocked_memory_budget_n20k",
        n=n,
        tile_size=GATE_TILE,
        num_tiles=result.num_tiles,
        lifetime=GATE_LIFETIME,
        peak_traced_bytes=peak_bytes,
        budget_bytes=MEMORY_BUDGET_BYTES,
        dense_matrix_bytes=dense_matrix_bytes,
        elapsed_s=elapsed,
        diameter=float(result.summary.diameter),
        reachable_fraction=result.summary.reachable_fraction,
        passed=bool(peak_bytes < MEMORY_BUDGET_BYTES),
    )
    assert peak_bytes < MEMORY_BUDGET_BYTES, (
        f"blocked n={n} sweep peaked at {peak_bytes / 2**20:.0f} MiB, "
        f"over the {MEMORY_BUDGET_BYTES / 2**20:.0f} MiB budget"
    )
    # Sanity: the run actually streamed (many tiles), and the sparse instance
    # behaves as expected (far from temporally connected at this lifetime).
    assert result.num_tiles == -(-n // GATE_TILE)
    assert 0.0 < result.summary.reachable_fraction < 0.01


def test_blocked_matches_dense_at_oracle_scale(perf_record):
    """n = 512 cross-validation: bit-identical summary, far smaller peak."""
    network = normalized_urtn(complete_graph(512, directed=True), seed=7)

    tracemalloc.start()
    dense = NetworkAnalysis(network).summary
    _, dense_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    streamed = blocked_sweep_summary(network, tile_size=64).summary
    _, blocked_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert streamed == dense
    perf_record(
        name="blocked_vs_dense_n512",
        n=512,
        tile_size=64,
        dense_peak_bytes=dense_peak,
        blocked_peak_bytes=blocked_peak,
        identical=bool(streamed == dense),
    )
    # The dense path materializes the full matrix; the blocked path holds one
    # 64-row tile at a time and should peak well below it.
    assert blocked_peak < dense_peak
