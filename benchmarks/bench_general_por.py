"""E6 / F3 bench — general-graph reachability guarantees (Theorems 7–8, Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.labeling import box_assignment
from repro.core.reachability import preserves_reachability
from repro.experiments import exp_general_por
from repro.graphs.generators import grid_graph, path_graph


def test_bench_experiment_e6(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_general_por.run("quick", seed=106), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize(
    "maker", [lambda: path_graph(32), lambda: grid_graph(6, 6)], ids=["path_32", "grid_6x6"]
)
def test_bench_box_assignment_and_check(benchmark, maker):
    graph = maker()

    def build_and_verify() -> bool:
        network = box_assignment(graph, mode="random", seed=14)
        return preserves_reachability(network)

    assert benchmark(build_and_verify)
