"""Per-backend sweep-kernel benchmarks and the compiled-backend speed gates.

Two jobs:

* ``test_backend_sweep_timings`` — measure every usable backend on the
  normalized U-RT clique at n ∈ {256, 512, 2048} (single-source forward and
  single-target reverse sweeps) and persist the numbers as one perf record
  per backend, tagged with the backend name.  These are the measurements
  quoted in ``docs/performance.md``.
* ``test_numba_forward_speedup_at_least_5x`` /
  ``test_numba_reverse_speedup_at_least_3x`` — the ISSUE acceptance gates:
  the numba backend must beat the NumPy reference single-thread on the
  n = 512 clique by ≥ 5× (forward) and ≥ 3× (reverse).  Both gates — and the
  timing sweep's numba leg — auto-skip when numba is not importable, so the
  default NumPy-only environment stays green; the CI job that installs numba
  runs them for real.

JIT warm-up is excluded from every measurement: each backend's ``warm_up()``
is called (and for numba, compiles and caches the jitted loops) before the
first timed sweep, exactly as ``docs/kernels.md`` prescribes.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import kernels
from repro.core.journeys import earliest_arrival_times
from repro.core.labeling import normalized_urtn
from repro.core.reverse_journeys import latest_departure_times
from repro.graphs.generators import complete_graph

#: Sizes quoted in docs/performance.md.
SIZES = (256, 512, 2048)
#: The gate instance size from the ISSUE.
GATE_N = 512
#: Sweeps per timing sample (distinct sources/targets, evenly spread).
PROBES = 8

_numba_reason = kernels.backend_unavailable_reason("numba")
requires_numba = pytest.mark.skipif(
    _numba_reason is not None, reason=f"backend 'numba': {_numba_reason}"
)

_instances: dict[int, object] = {}


def _instance(n: int):
    network = _instances.get(n)
    if network is None:
        network = _instances[n] = normalized_urtn(
            complete_graph(n, directed=True), seed=7
        )
        network.timearc_csr  # build the CSR once, outside every timing
    return network


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _probes(n: int) -> list[int]:
    return list(range(0, n, n // PROBES))[:PROBES]


def _time_forward(network, backend: str, attempts: int = 3) -> float:
    """Best-of wall-clock seconds for PROBES single-source forward sweeps."""
    best = float("inf")
    for _ in range(attempts):
        start = time.perf_counter()
        for source in _probes(network.n):
            earliest_arrival_times(network, source, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best


def _time_reverse(network, backend: str, attempts: int = 3) -> float:
    best = float("inf")
    for _ in range(attempts):
        start = time.perf_counter()
        for target in _probes(network.n):
            latest_departure_times(network, target, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best


def _measured_backends(n: int) -> list[str]:
    """Usable backends worth timing at size ``n``.

    The interpreted ``python`` backend exists for debugging and parity, not
    speed; measuring it beyond n = 256 only wastes minutes.
    """
    names = [
        name
        for name in kernels.available_backends()
        if kernels.get_backend(name).priority >= 0
    ]
    if n <= 256 and "python" in kernels.available_backends():
        names.append("python")
    return names


@pytest.mark.parametrize("n", SIZES)
def test_backend_sweep_timings(n, perf_record):
    """Measure every usable backend; one tagged perf record per (backend, n)."""
    network = _instance(n)
    for name in _measured_backends(n):
        kernels.get_backend(name).warm_up()  # JIT cost stays out of the clock
        forward_seconds = _time_forward(network, name)
        reverse_seconds = _time_reverse(network, name)
        perf_record(
            name=f"kernel_backend_{name}_n{n}",
            backend=name,
            n=n,
            sweeps=PROBES,
            forward_ms_per_sweep=forward_seconds / PROBES * 1e3,
            reverse_ms_per_sweep=reverse_seconds / PROBES * 1e3,
        )
    # Sanity anchor so a silent mis-dispatch can't produce an empty record:
    # every measured backend agrees with numpy on one probe.
    reference = earliest_arrival_times(network, 0, backend="numpy")
    for name in _measured_backends(n):
        np.testing.assert_array_equal(
            earliest_arrival_times(network, 0, backend=name), reference
        )


def _speedup_gate(perf_record, *, direction: str, required: float) -> None:
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"only {cpus} usable core(s); timing noise swamps the gate")
    network = _instance(GATE_N)
    timer = _time_forward if direction == "forward" else _time_reverse
    kernels.get_backend("numba").warm_up()
    numba_seconds = timer(network, "numba", attempts=5)
    numpy_seconds = timer(network, "numpy", attempts=5)
    speedup = numpy_seconds / numba_seconds
    perf_record(
        name=f"kernel_backend_numba_{direction}_speedup",
        backend="numba",
        baseline="numpy",
        direction=direction,
        n=GATE_N,
        numba_seconds=numba_seconds,
        numpy_seconds=numpy_seconds,
        speedup=speedup,
        required=required,
    )
    assert speedup >= required, (
        f"numba {direction} sweep only {speedup:.2f}x faster than numpy at "
        f"n={GATE_N} ({numba_seconds * 1e3:.1f} ms vs "
        f"{numpy_seconds * 1e3:.1f} ms, required {required}x)"
    )


@requires_numba
def test_numba_forward_speedup_at_least_5x(perf_record):
    """ISSUE gate: numba ≥ 5x over NumPy on the n=512 forward sweep."""
    _speedup_gate(perf_record, direction="forward", required=5.0)


@requires_numba
def test_numba_reverse_speedup_at_least_3x(perf_record):
    """ISSUE gate: numba ≥ 3x over NumPy on the n=512 reverse sweep."""
    _speedup_gate(perf_record, direction="reverse", required=3.0)
