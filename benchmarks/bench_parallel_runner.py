"""Parallel Monte-Carlo engine bench — jobs=1 vs jobs=N on the E1 workload.

Two layers:

* pytest-benchmark timings of ``run_trials`` on the E1 temporal-diameter
  workload, serial and with a 4-worker process pool, plus the streaming
  aggregation mode;
* ``test_parallel_speedup_at_least_1_5x_at_jobs_4`` — the acceptance gate:
  on a machine with at least 4 usable cores the multiprocess executor must
  deliver ≥ 1.5× wall-clock over serial on the same workload, with
  bit-identical results.  On 2–3 cores the bar drops to break-even (1.1×);
  on a single-core runner the gate skips — there is nothing to parallelise
  (see ``docs/performance.md`` for recorded numbers).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.exp_temporal_diameter import trial_temporal_diameter
from repro.montecarlo.experiment import Experiment
from repro.montecarlo.runner import run_trials

#: The E1 workload the gate measures: one Θ(log n)-diameter clique instance
#: per trial, sized so the serial run takes a couple of seconds on CI.
WORKLOAD = Experiment(
    name="E1-temporal-diameter",
    trial=trial_temporal_diameter,
    parameters={"n": 128, "directed": True},
)
REPETITIONS = 24
SEED = 314


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _wall_clock(jobs: int | None) -> tuple[object, float]:
    start = time.perf_counter()
    result = run_trials(WORKLOAD, repetitions=REPETITIONS, seed=SEED, jobs=jobs)
    return result, time.perf_counter() - start


def test_bench_run_trials_serial(benchmark):
    result = benchmark.pedantic(
        lambda: run_trials(WORKLOAD, repetitions=8, seed=SEED),
        rounds=1,
        iterations=1,
    )
    assert result.repetitions == 8


def test_bench_run_trials_jobs4(benchmark):
    result = benchmark.pedantic(
        lambda: run_trials(WORKLOAD, repetitions=8, seed=SEED, jobs=4),
        rounds=1,
        iterations=1,
    )
    assert result.repetitions == 8


def test_bench_run_trials_streaming(benchmark):
    result = benchmark.pedantic(
        lambda: run_trials(WORKLOAD, repetitions=8, seed=SEED, aggregation="streaming"),
        rounds=1,
        iterations=1,
    )
    assert result.accumulators is not None


def test_parallel_speedup_at_least_1_5x_at_jobs_4(perf_record):
    """Acceptance gate: multiprocess must beat serial on the E1 workload."""
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"only {cpus} usable core(s); parallel speedup is unmeasurable")
    required = 1.5 if cpus >= 4 else 1.1

    def best_of(jobs: int | None, attempts: int):
        # Best-of-k wall clock: robust to scheduler stalls on shared CI
        # runners, where a single-shot measurement is flaky.
        best = float("inf")
        result = None
        for _ in range(attempts):
            result, seconds = _wall_clock(jobs)
            best = min(best, seconds)
        return result, best

    serial, serial_seconds = best_of(None, attempts=2)
    parallel, parallel_seconds = best_of(4, attempts=2)

    assert serial.metrics == parallel.metrics, (
        "jobs=4 must be bit-identical to serial for the same seed"
    )
    speedup = serial_seconds / parallel_seconds
    perf_record(
        name="parallel_runner_speedup",
        cpus=cpus,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        speedup=speedup,
        required=required,
    )
    assert speedup >= required, (
        f"jobs=4 only {speedup:.2f}x faster than serial on {cpus} cores "
        f"({parallel_seconds * 1e3:.0f} ms vs {serial_seconds * 1e3:.0f} ms, "
        f"required {required}x)"
    )
