"""Analysis-handle cache bench — shared ``NetworkAnalysis`` vs per-metric sweeps.

Two layers:

* pytest-benchmark timings of the 4-metric suite (temporal diameter +
  distance summary + ratio-to-log-n + strong reachability) on the n = 128
  directed clique, through the shared per-trial handle and through per-metric
  recomputation (a fresh throwaway handle per metric — what the historical
  free-function API costs);
* ``test_analysis_cache_speedup_at_least_2x`` — the acceptance gate: the
  shared handle must deliver ≥ 2× wall-clock over per-metric recomputation on
  that suite, with identical metric values.  On a single-core runner the gate
  skips, like the parallel-engine gate — shared CI runners below two cores
  produce timing noise larger than the effect (see ``docs/performance.md``
  for recorded numbers).
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping

import numpy as np
import pytest

from repro import complete_graph, normalized_urtn
from repro.scenarios.metrics import METRICS, TrialContext
from repro.scenarios.specs import MetricSpec

N = 128
INSTANCES = 12
SEED = 2014

#: The gated 4-metric suite: three of the four need the all-pairs arrival
#: structure (diameter, summary fields, T_reach), one derives from an earlier
#: metric — exactly the shape Monte-Carlo scenarios run per trial.
SUITE = (
    MetricSpec("temporal_diameter"),
    MetricSpec(
        "distance_summary",
        {"fields": ["mean_temporal_distance", "temporal_radius", "reachable_fraction"]},
    ),
    MetricSpec("ratio_to_log_n"),
    MetricSpec("strong_reachability"),
)

_CLIQUE = complete_graph(N, directed=True)


def _instances() -> list:
    networks = [normalized_urtn(_CLIQUE, seed=SEED + i) for i in range(INSTANCES)]
    for network in networks:
        network.timearc_csr  # warm the CSR cache so both paths time sweeps only
    return networks


def _run_suite_shared(network) -> dict[str, float]:
    """One TrialContext per trial: all metrics share one memoized handle."""
    ctx = TrialContext(
        graph=_CLIQUE, network=network, params={"n": N}, rng=np.random.default_rng(0)
    )
    for spec in SUITE:
        ctx.metrics.update(METRICS[spec.metric](ctx, spec.options))
    return dict(ctx.metrics)


def _run_suite_recompute(network) -> dict[str, float]:
    """Per-metric recomputation: every metric gets a fresh throwaway handle."""
    metrics: dict[str, float] = {}
    for spec in SUITE:
        ctx = TrialContext(
            graph=_CLIQUE,
            network=network,
            params={"n": N},
            rng=np.random.default_rng(0),
            metrics=dict(metrics),
        )
        metrics.update(METRICS[spec.metric](ctx, spec.options))
    return metrics


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _wall_clock(runner, networks) -> tuple[list[Mapping[str, Any]], float]:
    start = time.perf_counter()
    results = [runner(network) for network in networks]
    return results, time.perf_counter() - start


def test_bench_suite_shared_handle(benchmark):
    networks = _instances()
    results = benchmark.pedantic(
        lambda: [_run_suite_shared(network) for network in networks],
        rounds=1,
        iterations=1,
    )
    assert len(results) == INSTANCES


def test_bench_suite_per_metric_recompute(benchmark):
    networks = _instances()
    results = benchmark.pedantic(
        lambda: [_run_suite_recompute(network) for network in networks],
        rounds=1,
        iterations=1,
    )
    assert len(results) == INSTANCES


def test_analysis_cache_speedup_at_least_2x(perf_record):
    """Acceptance gate: the shared handle must beat per-metric recomputation."""
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"only {cpus} usable core(s); timing noise swamps the gate")
    networks = _instances()

    def best_of(runner, attempts: int):
        # Best-of-k wall clock: robust to scheduler stalls on shared CI
        # runners, where a single-shot measurement is flaky.
        best = float("inf")
        results = None
        for _ in range(attempts):
            results, seconds = _wall_clock(runner, networks)
            best = min(best, seconds)
        return results, best

    shared, shared_seconds = best_of(_run_suite_shared, attempts=3)
    recompute, recompute_seconds = best_of(_run_suite_recompute, attempts=3)

    assert shared == recompute, (
        "the shared handle must produce identical metric values"
    )
    speedup = recompute_seconds / shared_seconds
    perf_record(
        name="analysis_cache_speedup",
        n=N,
        instances=INSTANCES,
        shared_seconds=shared_seconds,
        recompute_seconds=recompute_seconds,
        speedup=speedup,
        required=2.0,
    )
    assert speedup >= 2.0, (
        f"shared handle only {speedup:.2f}x faster than per-metric "
        f"recomputation ({shared_seconds * 1e3:.0f} ms vs "
        f"{recompute_seconds * 1e3:.0f} ms, required 2.0x)"
    )
