"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment of DESIGN.md §4 (E1–E7 /
F1–F3) at its ``quick`` preset — the measured rows are attached to the
pytest-benchmark ``extra_info`` so they appear in ``--benchmark-json`` output —
plus micro-benchmarks of the kernels that dominate that experiment's runtime.

Machine-readable results
------------------------
Every bench run leaves JSON behind in ``benchmarks/results/`` (git-ignored):

* :func:`write_perf_record` / the ``perf_record`` fixture — the explicit path
  used by the hand-timed acceptance gates (speedups, telemetry overhead) to
  persist exactly the numbers their assertions were judged on;
* :func:`pytest_sessionfinish` — a defensive sweep that dumps the
  pytest-benchmark statistics of *every* collected benchmark, grouped per
  bench module, so modules without a hand-timed gate still emit records.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any

import pytest

#: Where every benchmark drops its machine-readable output.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _git_sha() -> str:
    """Short commit id of the tree being measured (best effort)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def write_perf_record(name: str, **fields: Any) -> Path:
    """Persist one perf record as ``benchmarks/results/<name>.json``.

    ``fields`` is free-form (timings, speedups, sizes, pass/fail) but must be
    JSON-serialisable.  The helper stamps the record with the commit id and a
    wall-clock timestamp so results from different runs can be told apart.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = {
        "name": name,
        "git_sha": _git_sha(),
        "unix_time": time.time(),
        **fields,
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def perf_record(request):
    """Callable fixture: ``perf_record(speedup=3.4, ...)`` → JSON on disk.

    Defaults the record name to the requesting test's name; pass ``name=`` to
    override (e.g. to keep one stable filename across parametrizations).
    """

    def _record(name: str | None = None, **fields: Any) -> Path:
        return write_perf_record(name or request.node.name, **fields)

    return _record


def pytest_collection_modifyitems(config, items):
    """Benchmarks are only meaningful with --benchmark-only / --benchmark-enable."""
    del config, items


def pytest_sessionfinish(session, exitstatus):
    """Dump pytest-benchmark stats per bench module into ``results/``.

    Defensive by design: pytest-benchmark's internals are not a public API,
    so every attribute access is guarded and a failure to dump must never
    turn a green bench session red.
    """
    del exitstatus
    try:
        benchmarks = getattr(
            getattr(session.config, "_benchmarksession", None), "benchmarks", None
        )
        if not benchmarks:
            return
        by_module: dict[str, list[dict[str, Any]]] = {}
        for bench in benchmarks:
            fullname = getattr(bench, "fullname", "") or ""
            module = Path(fullname.split("::", 1)[0]).stem or "unknown"
            stats = getattr(bench, "stats", None)
            entry: dict[str, Any] = {
                "test": getattr(bench, "name", fullname),
                "group": getattr(bench, "group", None),
            }
            for field in ("min", "max", "mean", "median", "stddev", "rounds"):
                value = getattr(stats, field, None)
                if value is not None:
                    entry[field] = value
            extra = getattr(bench, "extra_info", None)
            if extra:
                entry["extra_info"] = dict(extra)
            by_module.setdefault(module, []).append(entry)
        for module, entries in by_module.items():
            write_perf_record(module, benchmarks=entries)
    except Exception:  # pragma: no cover - dump is strictly best-effort
        pass


@pytest.fixture
def attach_report():
    """Helper: copy the headline numbers of an ExperimentReport into extra_info."""

    def _attach(benchmark, report):
        benchmark.extra_info["experiment"] = report.experiment_id
        benchmark.extra_info["consistent_with_paper"] = report.consistent
        benchmark.extra_info["rows"] = len(report.records)
        return report

    return _attach
