"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment of DESIGN.md §4 (E1–E7 /
F1–F3) at its ``quick`` preset — the measured rows are attached to the
pytest-benchmark ``extra_info`` so they appear in ``--benchmark-json`` output —
plus micro-benchmarks of the kernels that dominate that experiment's runtime.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(config, items):
    """Benchmarks are only meaningful with --benchmark-only / --benchmark-enable."""
    del config, items


@pytest.fixture
def attach_report():
    """Helper: copy the headline numbers of an ExperimentReport into extra_info."""

    def _attach(benchmark, report):
        benchmark.extra_info["experiment"] = report.experiment_id
        benchmark.extra_info["consistent_with_paper"] = report.consistent
        benchmark.extra_info["rows"] = len(report.records)
        return report

    return _attach
