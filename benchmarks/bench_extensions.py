"""E8 / E9 benches — the extension experiments (F-CASE and multi-label cliques)."""

from __future__ import annotations

import pytest

from repro.core.distances import temporal_diameter
from repro.core.labeling import uniform_random_labels
from repro.experiments import exp_fcase, exp_multilabel
from repro.graphs.generators import complete_graph
from repro.randomness.distributions import GeometricLabelDistribution


def test_bench_experiment_e8(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_fcase.run("quick", seed=108), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


def test_bench_experiment_e9(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_multilabel.run("quick", seed=109), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("r", [1, 4])
def test_bench_multilabel_diameter(benchmark, r):
    clique = complete_graph(96, directed=True)
    network = uniform_random_labels(clique, labels_per_edge=r, lifetime=96, seed=30)
    result = benchmark(lambda: temporal_diameter(network))
    assert result <= 96


def test_bench_fcase_instance_generation(benchmark):
    clique = complete_graph(96, directed=True)
    distribution = GeometricLabelDistribution(96, q=0.05)
    network = benchmark(
        lambda: uniform_random_labels(clique, distribution=distribution, seed=31)
    )
    assert network.total_labels == clique.m
