"""Service query path bench — warm handle-cache hits vs cold construction.

The service's ``POST /query`` endpoint rebuilds the requested temporal
network deterministically (cheap), fingerprints it, and looks the live
:class:`~repro.analysis_api.NetworkAnalysis` handle up in the bounded LRU.
A *cold* query therefore pays handle construction plus the first sweep; a
*warm* query pays the rebuild + fingerprint + a dictionary hit, with every
artifact served from the handle's memo.

Two layers:

* pytest-benchmark timings of cold construction and warm queries on the
  n = 256 directed clique;
* ``test_warm_query_at_least_10x_faster_than_cold`` — the acceptance gate:
  at n = 256 the warm-cache query must be ≥ 10× faster than cold handle
  construction, with identical answers.  The measured ratio is persisted to
  ``benchmarks/results/`` via :func:`write_perf_record`.
"""

from __future__ import annotations

import time

import pytest

from repro.service import ServiceApp

N = 256
SEED = 2014

QUERY = {
    "op": "centrality",
    "measure": "harmonic",
    "graph": {"family": "clique", "params": {"n": N, "directed": True}},
    "labels": {"model": "uniform", "lifetime": N},
    "seed": SEED,
}


@pytest.fixture()
def app(tmp_path):
    service = ServiceApp(data_dir=tmp_path / "service-data")
    yield service
    service.close()


def _cold_query(service: ServiceApp) -> dict:
    """One cold query: empty the handle cache first, then pay the sweep."""
    service.cache.clear()
    return service.query(QUERY)


def bench_cold_handle_construction(benchmark, app):
    result = benchmark(_cold_query, app)
    assert not result["cache_hit"]
    benchmark.extra_info["n"] = N


def bench_warm_cache_query(benchmark, app):
    app.query(QUERY)  # populate the cache once
    result = benchmark(app.query, QUERY)
    assert result["cache_hit"]
    benchmark.extra_info["n"] = N


def test_warm_query_at_least_10x_faster_than_cold(app, perf_record):
    """Acceptance gate: the handle cache must pay for itself at n = 256."""

    def best_of(runner, attempts: int):
        best = float("inf")
        result = None
        for _ in range(attempts):
            start = time.perf_counter()
            result = runner()
            best = min(best, time.perf_counter() - start)
        return result, best

    # Best-of-k wall clock on both sides: robust to scheduler stalls on
    # shared CI runners, where a single-shot measurement is flaky.
    cold_result, cold_seconds = best_of(lambda: _cold_query(app), attempts=3)
    warm_result, warm_seconds = best_of(lambda: app.query(QUERY), attempts=5)

    assert not cold_result["cache_hit"] and warm_result["cache_hit"]
    assert warm_result["result"] == cold_result["result"], (
        "warm and cold queries must answer identically"
    )

    speedup = cold_seconds / warm_seconds
    perf_record(
        name="service_cache_warm_vs_cold",
        n=N,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=speedup,
        threshold=10.0,
    )
    assert speedup >= 10.0, (
        f"warm query {warm_seconds * 1e3:.2f}ms vs cold construction "
        f"{cold_seconds * 1e3:.2f}ms — only {speedup:.1f}x, gate needs 10x"
    )
