"""Telemetry overhead bench — the disabled path must cost (almost) nothing.

Two layers:

* pytest-benchmark timings of the n = 256 all-pairs arrival sweep with
  telemetry off and with a live recorder attached, plus a micro-benchmark of
  the bare ``telemetry.active()`` dispatch the kernels run per call;
* ``test_telemetry_disabled_overhead_under_2_percent`` — the acceptance
  gate behind the "< 2 % regression" criterion: the instrumented kernels
  emit nothing per loop iteration, only one record per sweep, so a sweep
  with a recorder attached must stay within 2 % (plus a small absolute
  slack for timer noise) of the telemetry-off sweep.  Enabled bounding
  disabled this tightly is what pins the disabled path at the seed's cost:
  the off-path does strictly less work than the on-path.  Interleaved
  best-of-k sampling keeps the comparison robust on shared CI runners.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import complete_graph, normalized_urtn, telemetry
from repro.core.journeys import earliest_arrival_matrix

N = 256
SEED = 2014
ATTEMPTS = 5
#: Relative gate plus absolute slack: 2 % of a ~tens-of-ms sweep is well
#: above the one extra record_sweep call, but a 1 ms floor absorbs timer
#: jitter on runs fast enough that 2 % is sub-millisecond.
RELATIVE_BOUND = 1.02
ABSOLUTE_SLACK_SECONDS = 1e-3


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def clique_256():
    network = normalized_urtn(complete_graph(N, directed=True), seed=SEED)
    network.timearc_csr  # warm the CSR cache so every sample times sweeps only
    return network


def test_bench_sweep_telemetry_disabled(benchmark, clique_256):
    assert not telemetry.active()
    matrix = benchmark(lambda: earliest_arrival_matrix(clique_256))
    assert matrix.shape == (N, N)


def test_bench_sweep_telemetry_enabled(benchmark, clique_256):
    with telemetry.session() as recorder:
        matrix = benchmark(lambda: earliest_arrival_matrix(clique_256))
    assert matrix.shape == (N, N)
    assert recorder.counters["kernel.forward.sweeps"] >= 1


def test_bench_active_dispatch(benchmark):
    """The whole per-call cost of disabled telemetry: one active() check."""
    assert not telemetry.active()
    benchmark(telemetry.active)


def test_telemetry_disabled_overhead_under_2_percent(clique_256, perf_record):
    """Acceptance gate: a live recorder adds < 2 % to the n = 256 sweep."""
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"only {cpus} usable core(s); timing noise swamps the gate")
    network = clique_256

    def sample() -> float:
        start = time.perf_counter()
        earliest_arrival_matrix(network)
        return time.perf_counter() - start

    # Warm both paths once before sampling.
    sample()
    with telemetry.session():
        sample()

    # Interleave the two conditions so drift (thermal, scheduler) hits both
    # equally, then take best-of-k per condition.
    disabled_best = float("inf")
    enabled_best = float("inf")
    for _ in range(ATTEMPTS):
        assert not telemetry.active()
        disabled_best = min(disabled_best, sample())
        with telemetry.session():
            enabled_best = min(enabled_best, sample())

    overhead = enabled_best / disabled_best - 1.0
    perf_record(
        name="telemetry_overhead",
        n=N,
        attempts=ATTEMPTS,
        disabled_seconds=disabled_best,
        enabled_seconds=enabled_best,
        overhead_fraction=overhead,
        relative_bound=RELATIVE_BOUND,
        absolute_slack_seconds=ABSOLUTE_SLACK_SECONDS,
    )
    assert enabled_best <= disabled_best * RELATIVE_BOUND + ABSOLUTE_SLACK_SECONDS, (
        f"telemetry-on sweep {enabled_best * 1e3:.2f} ms vs telemetry-off "
        f"{disabled_best * 1e3:.2f} ms ({overhead * 100:+.2f} %); the "
        f"per-sweep record must stay under 2 % at n = {N}"
    )
