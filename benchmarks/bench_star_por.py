"""E5 / F2 bench — star-graph reachability threshold and PoR (Theorem 6, Figure 2)."""

from __future__ import annotations

import math

import pytest

from repro.core.guarantees import reachability_probability, two_split_journey_probability
from repro.experiments import exp_star_por
from repro.graphs.generators import star_graph


def test_bench_experiment_e5(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_star_por.run("quick", seed=105), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("r", [1, 8])
def test_bench_star_reachability_probability(benchmark, r):
    star = star_graph(128)
    probability = benchmark.pedantic(
        lambda: reachability_probability(star, r, trials=20, seed=12),
        rounds=1,
        iterations=1,
    )
    assert 0.0 <= probability <= 1.0


def test_bench_two_split_probability(benchmark):
    n = 256
    r = int(math.log(n))
    value = benchmark(lambda: two_split_journey_probability(n, r, trials=5000, seed=13))
    assert 0.0 <= value <= 1.0
