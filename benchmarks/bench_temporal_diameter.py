"""E1 bench — temporal diameter of the normalized U-RT clique (Theorem 4).

Two layers:

* ``test_bench_experiment_e1`` regenerates the E1 table (quick preset) and
  records whether the measured shape matches the paper;
* kernel micro-benchmarks time the all-pairs temporal distance sweep that
  dominates E1's cost, at two clique sizes.
"""

from __future__ import annotations

import pytest

from repro.core.distances import temporal_distance_matrix, temporal_diameter
from repro.core.labeling import normalized_urtn
from repro.experiments import exp_temporal_diameter
from repro.graphs.generators import complete_graph


def test_bench_experiment_e1(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_temporal_diameter.run("quick", seed=101), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("n", [64, 128, 256])
def test_bench_temporal_diameter_kernel(benchmark, n):
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=5)
    result = benchmark(lambda: temporal_diameter(network))
    assert result <= n


def test_bench_distance_matrix_clique_192(benchmark):
    clique = complete_graph(192, directed=True)
    network = normalized_urtn(clique, seed=6)
    matrix = benchmark(lambda: temporal_distance_matrix(network))
    assert matrix.shape == (192, 192)
