"""E1 bench — temporal diameter of the normalized U-RT clique (Theorem 4).

Three layers:

* ``test_bench_experiment_e1`` regenerates the E1 table (quick preset) and
  records whether the measured shape matches the paper;
* kernel micro-benchmarks time the batched all-pairs sweep that dominates
  E1's cost at several clique sizes;
* ``TestBatchedVsLooped`` measures the batched multi-source engine
  (:func:`repro.core.journeys.earliest_arrival_matrix` over the cached CSR
  time-arc layout) against the looped per-source path and asserts the ≥ 3×
  speedup the engine is required to deliver at n = 256 (see
  ``docs/performance.md`` for recorded numbers).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.distances import (
    temporal_diameter,
    temporal_distance_matrix,
    temporal_distance_matrix_reference,
)
from repro.core.journeys import earliest_arrival_matrix
from repro.core.labeling import normalized_urtn
from repro.experiments import exp_temporal_diameter
from repro.graphs.generators import complete_graph


def test_bench_experiment_e1(benchmark, attach_report):
    report = benchmark.pedantic(
        lambda: exp_temporal_diameter.run("quick", seed=101), rounds=1, iterations=1
    )
    attach_report(benchmark, report)
    assert report.consistent


@pytest.mark.parametrize("n", [64, 128, 256])
def test_bench_temporal_diameter_kernel(benchmark, n):
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=5)
    result = benchmark(lambda: temporal_diameter(network))
    assert result <= n


def test_bench_distance_matrix_clique_192(benchmark):
    clique = complete_graph(192, directed=True)
    network = normalized_urtn(clique, seed=6)
    matrix = benchmark(lambda: temporal_distance_matrix(network))
    assert matrix.shape == (192, 192)


class TestBatchedVsLooped:
    """Batched engine vs the looped per-source path, same instance."""

    @pytest.fixture(scope="class")
    def clique_256(self):
        clique = complete_graph(256, directed=True)
        return normalized_urtn(clique, seed=7)

    def test_bench_batched_engine_256(self, benchmark, clique_256):
        matrix = benchmark(lambda: earliest_arrival_matrix(clique_256))
        assert matrix.shape == (256, 256)

    def test_bench_looped_path_256(self, benchmark, clique_256):
        matrix = benchmark.pedantic(
            lambda: temporal_distance_matrix_reference(clique_256),
            rounds=1,
            iterations=1,
        )
        assert matrix.shape == (256, 256)

    def test_batched_speedup_at_least_3x(self, clique_256, perf_record):
        """Acceptance criterion: ≥ 3× over the looped path at n = 256."""
        network = clique_256
        network.timearc_csr  # build the cache outside both timed regions

        def best_of(callable_, repetitions):
            # Best-of-k wall clock: robust to scheduler stalls on shared
            # CI runners, where a single-shot measurement is flaky.
            best = float("inf")
            result = None
            for _ in range(repetitions):
                start = time.perf_counter()
                result = callable_()
                best = min(best, time.perf_counter() - start)
            return result, best

        batched, batched_seconds = best_of(
            lambda: earliest_arrival_matrix(network), repetitions=5
        )
        looped, looped_seconds = best_of(
            lambda: temporal_distance_matrix_reference(network), repetitions=3
        )

        assert np.array_equal(batched, looped)
        speedup = looped_seconds / batched_seconds
        perf_record(
            name="batched_sweep_speedup",
            n=256,
            batched_seconds=batched_seconds,
            looped_seconds=looped_seconds,
            speedup=speedup,
            required=3.0,
        )
        assert speedup >= 3.0, (
            f"batched engine only {speedup:.1f}x faster than the looped path "
            f"({batched_seconds * 1e3:.1f} ms vs {looped_seconds * 1e3:.1f} ms)"
        )
